// Package geogossip is a simulation library for gossip averaging on
// geometric random graphs, reproducing "Geographic Gossip on Geometric
// Random Graphs via Affine Combinations" (Narayanan, PODC 2007).
//
// A Network is a set of n sensors placed uniformly at random on the unit
// square, connected at the standard connectivity radius
// r = c·sqrt(log n / n). Each sensor holds a value; an Algorithm drives
// the values toward their global average while the library counts every
// radio transmission — single-hop exchanges, multi-hop greedy-routed
// packets, and control traffic.
//
// Four algorithm families are provided:
//
//   - Boyd: randomized nearest-neighbour gossip (Boyd et al., INFOCOM
//     2005), Õ(n²) transmissions.
//   - Geographic: geographic gossip with rejection sampling (Dimakis et
//     al., IPSN 2006), Õ(n^1.5) transmissions.
//   - PushSum: one-way push-sum averaging (Kempe–Dobra–Gehrke, FOCS
//     2003), loss- and churn-tolerant by mass conservation.
//   - AffineHierarchical / AffineAsync: the paper's hierarchical protocol
//     using non-convex affine combinations, n^{1+o(1)} transmissions
//     asymptotically; AffineAsync is the faithful event-driven §4
//     protocol, AffineHierarchical the round-structured §3 engine.
//
// Every engine transmits through a pluggable radio fault model — i.i.d.
// loss (WithLossRate), Gilbert–Elliott burst loss, spatially correlated
// jamming fields (static, scheduled and moving disks, convex polygons),
// partition/heal cut lines, and crash-stop node churn with optional
// revival — uniform or adversarially targeted at hierarchy
// representatives / high-degree hubs (WithFaults, WithChurn). The
// matching recovery protocols — representative re-election and
// restart-from-neighbor state resync — switch on with WithRecovery.
//
// Quickstart:
//
//	nw, err := geogossip.NewNetwork(1024, geogossip.WithSeed(7))
//	// handle err
//	values := make([]float64, nw.N())
//	// fill values with sensor measurements...
//	res, err := geogossip.AffineHierarchical(geogossip.WithTargetError(1e-3)).Run(nw, values)
//	// values now hold (approximately) their original mean everywhere;
//	// res reports transmissions, convergence, and the error trajectory.
//
// For whole comparison grids (algorithm × n × seed × loss × ...), Sweep
// expands a declarative SweepSpec into tasks and runs them concurrently
// with deterministic per-task seeding — bit-identical results at any
// worker count. See SweepSpec and cmd/sweep.
package geogossip

import (
	"errors"
	"fmt"
	"io"
	"maps"

	"geogossip/internal/channel"
	"geogossip/internal/core"
	"geogossip/internal/gossip"
	"geogossip/internal/graph"
	"geogossip/internal/hier"
	"geogossip/internal/metrics"
	"geogossip/internal/obs"
	"geogossip/internal/rng"
	"geogossip/internal/sim"
	"geogossip/internal/trace"
)

// Network is an immutable simulated sensor network: node positions, the
// geometric connectivity graph, and the paper's recursive square
// hierarchy. Safe for concurrent use by multiple algorithm runs.
type Network struct {
	g *graph.Graph
	h *hier.Hierarchy
	// leafTarget and maxDepth record the hierarchy parameters so Save can
	// round-trip the exact construction.
	leafTarget float64
	maxDepth   int
}

// NetworkOption configures NewNetwork.
type NetworkOption func(*networkConfig)

type networkConfig struct {
	seed         uint64
	radiusMult   float64
	leafTarget   float64
	maxDepth     int
	buildWorkers int
}

// WithSeed sets the placement seed (default 1). The same (n, seed,
// options) always builds the same network.
func WithSeed(seed uint64) NetworkOption {
	return func(c *networkConfig) { c.seed = seed }
}

// WithRadiusMultiplier sets c in r = c·sqrt(log n / n) (default 1.5;
// c = 1 is the Gupta–Kumar connectivity threshold).
func WithRadiusMultiplier(c float64) NetworkOption {
	return func(cfg *networkConfig) { cfg.radiusMult = c }
}

// WithLeafTarget overrides the hierarchy's leaf occupancy target
// (default Θ(log n); see DESIGN.md §4.2 on the substitution for the
// paper's asymptotic (log n)^8 threshold).
func WithLeafTarget(t float64) NetworkOption {
	return func(c *networkConfig) { c.leafTarget = t }
}

// WithFlatHierarchy caps the hierarchy at a single partition level (the
// flat ablation of the paper's recursive construction).
func WithFlatHierarchy() NetworkOption {
	return func(c *networkConfig) { c.maxDepth = 1 }
}

// WithBuildWorkers sizes the construction worker pool: the graph's
// per-node radius scan and the hierarchy's leaf/role tables shard across
// n goroutines (0 selects all cores, 1 builds serially). Every worker
// count builds the byte-identical network — construction parallelism is
// never part of the result — so the knob only trades wall-clock for
// cores on large instances (see README "Scale" for the n=10⁶ recipe).
func WithBuildWorkers(n int) NetworkOption {
	return func(c *networkConfig) { c.buildWorkers = n }
}

// ErrNotConnected is returned by NewNetwork when the sampled instance is
// disconnected (retry with another seed or a larger radius multiplier).
var ErrNotConnected = errors.New("geogossip: generated network is not connected")

// NewNetwork samples n sensor positions uniformly on the unit square and
// builds the connectivity graph and square hierarchy. It returns
// ErrNotConnected if the instance is disconnected, since none of the
// algorithms can average across components.
func NewNetwork(n int, opts ...NetworkOption) (*Network, error) {
	cfg := networkConfig{seed: 1, radiusMult: 1.5}
	for _, o := range opts {
		o(&cfg)
	}
	g, err := graph.GenerateWorkers(n, cfg.radiusMult, rng.New(cfg.seed), cfg.buildWorkers)
	if err != nil {
		return nil, fmt.Errorf("geogossip: generate graph: %w", err)
	}
	if n > 1 && !g.IsConnected() {
		return nil, ErrNotConnected
	}
	h, err := hier.Build(g.Points(), hier.Config{LeafTarget: cfg.leafTarget, MaxDepth: cfg.maxDepth, Workers: cfg.buildWorkers})
	if err != nil {
		return nil, fmt.Errorf("geogossip: build hierarchy: %w", err)
	}
	return &Network{g: g, h: h, leafTarget: cfg.leafTarget, maxDepth: cfg.maxDepth}, nil
}

// N returns the number of sensors.
func (nw *Network) N() int { return nw.g.N() }

// Radius returns the connectivity radius.
func (nw *Network) Radius() float64 { return nw.g.Radius() }

// Edges returns the number of links.
func (nw *Network) Edges() int { return nw.g.Edges() }

// HierarchyLevels returns ℓ, the number of levels in the recursive
// partition (Θ(log log n)).
func (nw *Network) HierarchyLevels() int { return nw.h.Ell }

// Positions returns the sensor coordinates as (x, y) pairs.
func (nw *Network) Positions() [][2]float64 {
	out := make([][2]float64, nw.g.N())
	for i := range out {
		p := nw.g.Point(int32(i))
		out[i] = [2]float64{p.X, p.Y}
	}
	return out
}

// MeanDegree returns the average number of neighbours per sensor.
func (nw *Network) MeanDegree() float64 { return nw.g.Degrees().Mean }

// NetworkFootprint breaks down a network's resident memory: the packed
// point array, the CSR adjacency, the spatial cell index, the lazily
// cached Voronoi areas (zero until a geographic run computes them), and
// the square hierarchy's tables.
type NetworkFootprint struct {
	PointsBytes    int
	AdjacencyBytes int
	IndexBytes     int
	VoronoiBytes   int
	HierarchyBytes int
}

// Total sums the footprint components.
func (f NetworkFootprint) Total() int {
	return f.PointsBytes + f.AdjacencyBytes + f.IndexBytes + f.VoronoiBytes + f.HierarchyBytes
}

// Footprint reports the network's resident memory breakdown — the
// bytes-per-node figure (Footprint().Total() / N()) the README "Scale"
// section quotes for n = 10⁶.
func (nw *Network) Footprint() NetworkFootprint {
	gf := nw.g.Footprint()
	return NetworkFootprint{
		PointsBytes:    gf.PointsBytes,
		AdjacencyBytes: gf.AdjBytes,
		IndexBytes:     gf.IndexBytes,
		VoronoiBytes:   gf.VoronoiBytes,
		HierarchyBytes: nw.h.Footprint(),
	}
}

// Result summarizes one averaging run.
type Result struct {
	// Algorithm names the protocol.
	Algorithm string
	// Converged reports whether the target error was reached.
	Converged bool
	// FinalErr is the final relative ℓ₂ distance from consensus.
	FinalErr float64
	// Transmissions is the total radio cost.
	Transmissions uint64
	// SimSeconds is the run's simulated wall-clock at termination: the
	// event clock's high-water mark (delayed deliveries, ARQ backoff
	// waits included) normalized per node, in the units of WithDelay /
	// WithARQ durations. Zero unless the run had a transport layer
	// (WithDelay, WithARQ, or a delay/reorder/dup/arq WithFaults
	// component).
	SimSeconds float64
	// Breakdown splits Transmissions by category (near/far/control/
	// flood).
	Breakdown map[string]uint64
	// Curve is the sampled (transmissions, relative error) trajectory.
	Curve [][2]float64
	// Alive is the per-node liveness at termination under a churn fault
	// model (WithChurn or a churn WithFaults spec); nil when every node
	// was up. Dead nodes hold their last pre-crash value.
	Alive []bool
	// Reelections counts representative re-elections and Resyncs counts
	// restart-from-neighbor state resyncs performed under WithRecovery
	// (both zero otherwise).
	Reelections uint64
	Resyncs     uint64
	// Metrics is the run's observability snapshot: every counter and
	// histogram bucket the engine reported, keyed by Prometheus
	// exposition name (e.g. `geogossip_losses_total{engine="boyd"}`).
	// Deterministic for a fixed seed — see README "Observability" for the
	// metric catalogue.
	Metrics map[string]float64
}

func fromMetrics(res *metrics.Result, reg *obs.Registry) *Result {
	out := &Result{
		Algorithm:     res.Algorithm,
		Converged:     res.Converged,
		FinalErr:      res.FinalErr,
		Transmissions: res.Transmissions,
		SimSeconds:    res.SimSeconds,
		Alive:         append([]bool(nil), res.Alive...),
		Reelections:   res.Reelections,
		Resyncs:       res.Resyncs,
		Metrics:       reg.Flatten(),
	}
	// Clone, not alias: callers own the returned Result and must not be
	// able to mutate the engine's internal metrics state through it.
	out.Breakdown = maps.Clone(res.TransmissionsByCategory)
	if res.Curve != nil {
		for _, s := range res.Curve.Samples {
			out.Curve = append(out.Curve, [2]float64{float64(s.Transmissions), s.Err})
		}
	}
	return out
}

// Algorithm runs a distributed averaging protocol over a network,
// mutating the supplied values in place toward their mean.
type Algorithm interface {
	// Name identifies the protocol.
	Name() string
	// Run executes the protocol. len(values) must equal nw.N(); values
	// are mutated in place.
	Run(nw *Network, values []float64) (*Result, error)
}

// RunOption configures an algorithm constructor.
type RunOption func(*runConfig)

type runConfig struct {
	targetErr   float64
	maxTicks    uint64
	seed        uint64
	beta        float64
	betaSet     bool
	sampling    gossip.Sampling
	throttle    float64
	throttleSet bool
	lossRate    float64
	faults      string
	delay       string
	arq         channel.ARQParams
	arqSet      bool
	churnUp     float64
	churnDown   float64
	churnSet    bool
	recover     bool
	parallel    sim.Parallel
	tracer      trace.Tracer
	// optErr carries the first invalid option input; surfaced by validate
	// so constructors stay error-free.
	optErr error
}

// WithTargetError sets the relative ℓ₂ accuracy at which the run stops
// (default 1e-3).
func WithTargetError(eps float64) RunOption {
	return func(c *runConfig) { c.targetErr = eps }
}

// WithMaxTicks caps the simulated clock ticks (default 200,000,000).
func WithMaxTicks(t uint64) RunOption {
	return func(c *runConfig) { c.maxTicks = t }
}

// WithRunSeed seeds the protocol's randomness (default 1).
func WithRunSeed(seed uint64) RunOption {
	return func(c *runConfig) { c.seed = seed }
}

// WithBeta overrides the affine multiplier (default 2/5, the paper's
// value; only meaningful for the affine algorithms). It must be
// positive; Run reports an error otherwise.
func WithBeta(beta float64) RunOption {
	return func(c *runConfig) { c.beta = beta; c.betaSet = true }
}

// WithUniformSampling switches geographic gossip to idealized exact
// uniform partner sampling instead of rejection sampling.
func WithUniformSampling() RunOption {
	return func(c *runConfig) { c.sampling = gossip.SamplingUniformNode }
}

// WithThrottle sets the async protocol's round-serialization factor
// (default 8; stands in for the paper's n^a). It must be positive; Run
// reports an error otherwise.
func WithThrottle(t float64) RunOption {
	return func(c *runConfig) { c.throttle = t; c.throttleSet = true }
}

// WithLossRate makes every data packet (single-hop exchange or route
// leg) independently lost with probability p — shorthand for the
// "bernoulli:p" fault model of WithFaults. Lost exchanges pay the
// transmissions made before the loss and apply no update; pair updates
// commit atomically, so the consensus value is preserved under arbitrary
// loss. Default 0. Run validates p ∈ [0, 1] and rejects combining it
// with a WithFaults loss model.
func WithLossRate(p float64) RunOption {
	return func(c *runConfig) { c.lossRate = p }
}

// WithFaults selects the radio fault model from a compact spec:
//
//	"perfect"                      lossless medium (the default)
//	"bernoulli:P"                  i.i.d. loss with probability P
//	"ge:PGB/PBG/EG/EB"             Gilbert–Elliott burst loss: the
//	                               channel flips Good→Bad with PGB and
//	                               Bad→Good with PBG per packet, losing
//	                               packets with probability EG (good)
//	                               or EB (bad)
//	"jam:CX/CY/R/LOSS"             jamming disk: packets whose source,
//	                               route midpoint or destination falls
//	                               inside the disk of radius R at
//	                               (CX, CY) are lost with probability
//	                               LOSS; append /FROM/UNTIL for a
//	                               one-shot active window and a further
//	                               /PERIOD for a repeating on/off cycle
//	"mjam:CX/CY/R/LOSS/VX/VY"      moving jammer: the disk travels at
//	                               (VX, VY) per time unit, reflecting
//	                               off the unit-square walls
//	"jampoly:LOSS/X1/Y1/X2/Y2/..." convex polygonal jamming region
//	                               (counter-clockwise vertices)
//	"cut:A/B/C/FROM/UNTIL"         partition/heal: during [FROM, UNTIL)
//	                               every packet crossing the line
//	                               a·x + b·y = c is dropped, then the
//	                               medium heals
//	"churn:UP/DOWN"                crash-stop node failure: nodes stay
//	                               up for Exp(UP) ticks, then down for
//	                               Exp(DOWN) ticks (DOWN = 0 means dead
//	                               forever)
//	"repchurn:UP/DOWN"             adversarial churn restricted to the
//	                               nodes holding hierarchy-representative
//	                               roles at run start (affine algorithms
//	                               only) — a decapitation strike;
//	                               successors installed by WithRecovery
//	                               re-election are not chased
//	"hubchurn:UP/DOWN/K"           adversarial churn restricted to the
//	                               K highest-degree nodes
//	"delay:fixed/D"                transport delay: every hop takes D
//	                               time units on the simulated clock
//	                               (see WithDelay); also
//	                               "delay:uniform/LO/HI" and
//	                               "delay:exp/MEAN"
//	"reorder:P"                    a delivered packet is re-queued with
//	                               an extra delay draw with probability
//	                               P (requires a delay model)
//	"dup:P"                        a delivered packet is duplicated with
//	                               probability P, paying its airtime
//	                               again
//	"arq:RETRIES/TIMEOUT/BACKOFF"  automatic repeat request: failed
//	                               deliveries retry up to RETRIES times
//	                               with exponential backoff (see
//	                               WithARQ)
//
// Components compose via "+", e.g.
// "bernoulli:0.2+jam:0.5/0.5/0.2/0.9+churn:50000/10000". The spec is
// validated at Run time. Churn durations, field windows and cut windows
// are engine time units: clock ticks for boyd, geographic, push-sum and
// affine-async; transmissions for the round-structured
// affine-hierarchical engine.
func WithFaults(spec string) RunOption {
	return func(c *runConfig) { c.faults = spec }
}

// WithDelay gives every delivery a per-hop transit time drawn from a
// delay model, advancing the run's simulated clock (Result.SimSeconds):
//
//	"fixed/D"        every hop takes exactly D time units
//	"uniform/LO/HI"  per-hop latency uniform on [LO, HI)
//	"exp/MEAN"       per-hop latency exponential with the given mean
//
// The model is the spec grammar's "delay:" component (WithFaults), so
// "exp/0.5" here and a "delay:exp/0.5" fault component are the same
// layer; combining both is an error. Delay draws come from a dedicated
// RNG stream — adding a delay never perturbs the loss process or the
// protocol's draws. Run validates the model.
func WithDelay(model string) RunOption {
	return func(c *runConfig) { c.delay = model }
}

// WithARQ wraps every delivery in an automatic-repeat-request loop: a
// failed delivery is retried up to retries times, waiting
// timeout·backoff^k (plus deterministic jitter) on the simulated clock
// before attempt k's retry. Retransmissions pay their airtime into
// Result.Transmissions — ARQ trades radio cost for reliability, and the
// observability layer counts retransmissions, timeouts and backoff wait
// (see README, metric catalogue). Equivalent to the
// "arq:RETRIES/TIMEOUT/BACKOFF" fault component; combining both is an
// error. Run validates the parameters (retries ≥ 1, timeout > 0,
// backoff ≥ 1).
func WithARQ(retries int, timeout, backoff float64) RunOption {
	return func(c *runConfig) {
		c.arq = channel.ARQParams{Retries: retries, Timeout: timeout, Backoff: backoff}
		c.arqSet = true
	}
}

// WithRecovery enables the engines' fault-recovery protocols. For the
// affine algorithms: representative re-election — when a square's
// representative dies, the member nearest the square's centre among the
// survivors takes over (paying an election flood), so targeted churn
// against representatives no longer stalls the hierarchy — plus, for
// the async engine, control-state resync for revived nodes. For boyd
// and geographic: restart-from-neighbor state resync — a revived node
// first adopts a live neighbour's current estimate (2 transmissions)
// before rejoining, trading exact initial-sum preservation for
// convergence near the survivors' consensus. Push-sum ignores it: its
// mass-conservation bookkeeping already survives churn. Off by default;
// fault runs without it reproduce historical results bit-for-bit.
func WithRecovery() RunOption {
	return func(c *runConfig) { c.recover = true }
}

// WithParallel enables deterministic intra-run parallelism (DESIGN.md
// §9): the node set is split into shards contiguous deterministic shards
// (0 selects the fixed default of 8) executed by workers goroutines
// (0 selects all cores). The shard count is part of the schedule — two
// runs agree bit-for-bit only when their shard counts agree — while the
// worker count never changes any output, so a run is bit-identical to
// itself at every worker count. The sharded schedule is a different,
// equally valid interleaving of the protocol than the serial one, so its
// results are not draw-compatible with non-parallel runs; the option is
// off by default, which keeps every historical fingerprint byte-identical.
//
// Engine support: Boyd and PushSum shard their tick loops and require
// the perfect medium (no loss, faults, recovery or tracing); AffineAsync
// shards its recovery sweep and requires WithRecovery; Geographic and
// AffineHierarchical reject the option (their exchanges are global).
func WithParallel(shards, workers int) RunOption {
	return func(c *runConfig) {
		p := sim.Parallel{Shards: shards, Workers: workers}
		if !p.Enabled() {
			// Calling the option at all opts in; all-zero arguments mean
			// "defaults for everything".
			p.Shards = sim.DefaultShards
		}
		c.parallel = p
	}
}

// WithChurn overlays crash-stop node failure on the run: each node
// stays up for an exponential duration with mean meanUp, crashes, and
// (when meanDown > 0) revives after an exponential downtime with mean
// meanDown, resuming from its pre-crash state. meanDown = 0 means
// crashed nodes never return. Durations are engine time units (see
// WithFaults). Composes with WithLossRate and loss-only WithFaults
// specs; combining it with a WithFaults spec that already has churn is
// an error.
func WithChurn(meanUp, meanDown float64) RunOption {
	return func(c *runConfig) { c.churnUp, c.churnDown, c.churnSet = meanUp, meanDown, true }
}

// WithTraceWriter streams structured protocol events to w as they
// happen: long-range exchanges, round activations and packet losses for
// the affine algorithms; packet losses for the baselines.
func WithTraceWriter(w io.Writer) RunOption {
	return func(c *runConfig) { c.tracer = &trace.Writer{W: w} }
}

// WithTraceJSONL streams the run's protocol events to w as JSON Lines —
// one object per event, e.g.
//
//	{"seq":17,"kind":"far","square":3,"a":12,"b":907,"hops":24}
//
// replayable by cmd/traceview and trace-analysis tooling. sampleEvery
// selects deterministic per-kind 1-in-k sampling (0 or 1 keeps every
// event; sequence numbers still count the full stream, so a reader can
// tell sampling happened). kinds, when non-empty, restricts output to
// the named event kinds ("near", "far", "loss", "leaf-done", "activate",
// "deactivate", "reelect", "resync", "churn", "retransmit", "timeout");
// an unknown name fails the run. Later trace options override earlier
// ones.
func WithTraceJSONL(w io.Writer, sampleEvery int, kinds ...string) RunOption {
	return func(c *runConfig) {
		j := &trace.JSONL{W: w, SampleEvery: sampleEvery}
		for _, name := range kinds {
			k, err := trace.KindFromString(name)
			if err != nil {
				c.optErr = fmt.Errorf("geogossip: WithTraceJSONL: %w", err)
				return
			}
			j.Filter = append(j.Filter, k)
		}
		c.tracer = j
	}
}

func newRunConfig(opts []RunOption) runConfig {
	cfg := runConfig{
		targetErr: 1e-3,
		maxTicks:  200_000_000,
		seed:      1,
		sampling:  gossip.SamplingRejection,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// validate checks every RunOption input at Run time — returning a
// descriptive error instead of silently accepting garbage — and yields
// the assembled fault spec for the engine.
func (c runConfig) validate() (channel.Spec, error) {
	if c.optErr != nil {
		return channel.Spec{}, c.optErr
	}
	if c.targetErr <= 0 {
		return channel.Spec{}, fmt.Errorf("geogossip: target error %v must be positive", c.targetErr)
	}
	if c.betaSet && c.beta <= 0 {
		return channel.Spec{}, fmt.Errorf("geogossip: beta %v must be positive", c.beta)
	}
	if c.throttleSet && c.throttle <= 0 {
		return channel.Spec{}, fmt.Errorf("geogossip: throttle %v must be positive", c.throttle)
	}
	return c.engineFaults()
}

// engineFaults assembles the channel spec the engines run on from the
// WithFaults / WithLossRate / WithChurn options.
func (c runConfig) engineFaults() (channel.Spec, error) {
	spec, err := channel.Parse(c.faults)
	if err != nil {
		return spec, fmt.Errorf("geogossip: WithFaults: %w", err)
	}
	if c.lossRate != 0 {
		if c.lossRate < 0 || c.lossRate > 1 {
			return spec, fmt.Errorf("geogossip: loss rate %v outside [0, 1]", c.lossRate)
		}
		if spec.Loss != channel.LossNone {
			return spec, fmt.Errorf("geogossip: WithLossRate combined with a WithFaults loss model")
		}
		spec.Loss = channel.LossBernoulli
		spec.LossRate = c.lossRate
	}
	if c.delay != "" {
		d, err := channel.Parse("delay:" + c.delay)
		if err != nil {
			return spec, fmt.Errorf("geogossip: WithDelay: %w", err)
		}
		if !spec.Delay.IsZero() {
			return spec, fmt.Errorf("geogossip: WithDelay combined with a WithFaults delay component")
		}
		spec.Delay = d.Delay
	}
	if c.arqSet {
		if !spec.ARQ.IsZero() {
			return spec, fmt.Errorf("geogossip: WithARQ combined with a WithFaults arq component")
		}
		spec.ARQ = c.arq
	}
	if c.churnSet {
		if spec.HasChurn() {
			return spec, fmt.Errorf("geogossip: WithChurn combined with a WithFaults churn component")
		}
		if c.churnUp <= 0 {
			return spec, fmt.Errorf("geogossip: churn mean up-time %v must be positive", c.churnUp)
		}
		if c.churnDown < 0 {
			return spec, fmt.Errorf("geogossip: churn mean down-time %v must not be negative", c.churnDown)
		}
		spec.Churn = channel.ChurnParams{MeanUp: c.churnUp, MeanDown: c.churnDown}
	}
	if err := spec.Validate(); err != nil {
		return spec, fmt.Errorf("geogossip: %w", err)
	}
	return spec, nil
}

type boydAlgo struct{ cfg runConfig }

// Boyd returns randomized nearest-neighbour gossip (Boyd et al.).
func Boyd(opts ...RunOption) Algorithm { return boydAlgo{newRunConfig(opts)} }

func (a boydAlgo) Name() string { return "boyd" }

func (a boydAlgo) Run(nw *Network, values []float64) (*Result, error) {
	faults, err := a.cfg.validate()
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	res, err := gossip.RunBoyd(nw.g, values, gossip.Options{
		Stop:     sim.StopRule{TargetErr: a.cfg.targetErr, MaxTicks: a.cfg.maxTicks},
		Faults:   faults,
		Resync:   a.cfg.recover,
		Parallel: a.cfg.parallel,
		Tracer:   a.cfg.tracer,
		Obs:      reg.Scope(a.Name()),
	}, rng.New(a.cfg.seed))
	if err != nil {
		return nil, err
	}
	return fromMetrics(res, reg), nil
}

type geoAlgo struct{ cfg runConfig }

// Geographic returns geographic gossip (Dimakis et al.) with rejection
// sampling (or uniform sampling via WithUniformSampling).
func Geographic(opts ...RunOption) Algorithm { return geoAlgo{newRunConfig(opts)} }

func (a geoAlgo) Name() string { return "geographic" }

func (a geoAlgo) Run(nw *Network, values []float64) (*Result, error) {
	faults, err := a.cfg.validate()
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	res, err := gossip.RunGeographic(nw.g, values, gossip.GeoOptions{
		Options: gossip.Options{
			Stop:     sim.StopRule{TargetErr: a.cfg.targetErr, MaxTicks: a.cfg.maxTicks},
			Faults:   faults,
			Resync:   a.cfg.recover,
			Parallel: a.cfg.parallel,
			Tracer:   a.cfg.tracer,
			Obs:      reg.Scope(a.Name()),
		},
		Sampling: a.cfg.sampling,
	}, rng.New(a.cfg.seed))
	if err != nil {
		return nil, err
	}
	return fromMetrics(res, reg), nil
}

type affineAlgo struct{ cfg runConfig }

// AffineHierarchical returns the paper's algorithm in its round-structured
// form (§3): recursive square averaging with non-convex affine long-range
// exchanges.
func AffineHierarchical(opts ...RunOption) Algorithm { return affineAlgo{newRunConfig(opts)} }

func (a affineAlgo) Name() string { return "affine-hierarchical" }

func (a affineAlgo) Run(nw *Network, values []float64) (*Result, error) {
	faults, err := a.cfg.validate()
	if err != nil {
		return nil, err
	}
	if a.cfg.parallel.Enabled() {
		return nil, fmt.Errorf("geogossip: WithParallel is not supported by %s (round-structured exchanges are global)", a.Name())
	}
	reg := obs.NewRegistry()
	res, err := core.RunRecursive(nw.g, nw.h, values, core.RecursiveOptions{
		Eps:     a.cfg.targetErr,
		Beta:    a.cfg.beta,
		Faults:  faults,
		Recover: a.cfg.recover,
		Tracer:  a.cfg.tracer,
		Obs:     reg.Scope(a.Name()),
	}, rng.New(a.cfg.seed))
	if err != nil {
		return nil, err
	}
	return fromMetrics(res.Result, reg), nil
}

type asyncAlgo struct{ cfg runConfig }

// AffineAsync returns the paper's algorithm as the faithful event-driven
// §4 protocol (per-node Poisson clocks, on/off control, counters).
func AffineAsync(opts ...RunOption) Algorithm { return asyncAlgo{newRunConfig(opts)} }

func (a asyncAlgo) Name() string { return "affine-async" }

func (a asyncAlgo) Run(nw *Network, values []float64) (*Result, error) {
	faults, err := a.cfg.validate()
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	res, err := core.RunAsync(nw.g, nw.h, values, core.AsyncOptions{
		Eps:          a.cfg.targetErr,
		Beta:         a.cfg.beta,
		Throttle:     a.cfg.throttle,
		RoundsFactor: 2,
		Faults:       faults,
		Recover:      a.cfg.recover,
		Parallel:     a.cfg.parallel,
		Tracer:       a.cfg.tracer,
		Obs:          reg.Scope(a.Name()),
		Stop:         sim.StopRule{TargetErr: a.cfg.targetErr, MaxTicks: a.cfg.maxTicks},
	}, rng.New(a.cfg.seed))
	if err != nil {
		return nil, err
	}
	return fromMetrics(res.Result, reg), nil
}

type pushSumAlgo struct{ cfg runConfig }

// PushSum returns asynchronous push-sum averaging (Kempe–Dobra–Gehrke,
// FOCS 2003): one one-way message per exchange. Under faults, lost
// pushes roll back at the sender (mass-conservation bookkeeping), so
// the Σs and Σw invariants — and with them the consensus target — hold
// under arbitrary loss and churn; see the examples/churn scenario.
func PushSum(opts ...RunOption) Algorithm { return pushSumAlgo{newRunConfig(opts)} }

func (a pushSumAlgo) Name() string { return "push-sum" }

func (a pushSumAlgo) Run(nw *Network, values []float64) (*Result, error) {
	faults, err := a.cfg.validate()
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	res, err := gossip.RunPushSum(nw.g, values, gossip.Options{
		Stop:     sim.StopRule{TargetErr: a.cfg.targetErr, MaxTicks: a.cfg.maxTicks},
		Faults:   faults,
		Parallel: a.cfg.parallel,
		Tracer:   a.cfg.tracer,
		Obs:      reg.Scope(a.Name()),
	}, rng.New(a.cfg.seed))
	if err != nil {
		return nil, err
	}
	return fromMetrics(res, reg), nil
}

// Compile-time interface checks.
var (
	_ Algorithm = boydAlgo{}
	_ Algorithm = geoAlgo{}
	_ Algorithm = affineAlgo{}
	_ Algorithm = asyncAlgo{}
	_ Algorithm = pushSumAlgo{}
)

// Mean returns the arithmetic mean of values (the consensus target), or 0
// for an empty slice.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var s float64
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}
