package geogossip

import (
	"math"
	"testing"
)

// TestRunOptionValidation: every constructor defers validation to Run
// and reports a descriptive error instead of silently accepting garbage.
func TestRunOptionValidation(t *testing.T) {
	nw, err := NewNetwork(96, WithSeed(70), WithRadiusMultiplier(2.5))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts []RunOption
	}{
		{"zero target error", []RunOption{WithTargetError(0)}},
		{"negative target error", []RunOption{WithTargetError(-1e-3)}},
		{"negative loss rate", []RunOption{WithLossRate(-0.1)}},
		{"loss rate above one", []RunOption{WithLossRate(1.5)}},
		{"zero beta", []RunOption{WithBeta(0)}},
		{"negative beta", []RunOption{WithBeta(-0.4)}},
		{"zero throttle", []RunOption{WithThrottle(0)}},
		{"negative throttle", []RunOption{WithThrottle(-8)}},
		{"unknown fault model", []RunOption{WithFaults("quantum:0.5")}},
		{"malformed fault model", []RunOption{WithFaults("ge:0.1/0.2")}},
		{"loss rate and fault loss model", []RunOption{WithLossRate(0.1), WithFaults("bernoulli:0.2")}},
		{"churn option and churn fault model", []RunOption{WithChurn(100, 0), WithFaults("churn:100/0")}},
		{"non-positive churn up-time", []RunOption{WithChurn(0, 10)}},
		{"negative churn down-time", []RunOption{WithChurn(100, -1)}},
	}
	builders := map[string]func(...RunOption) Algorithm{
		"boyd":                Boyd,
		"geographic":          Geographic,
		"push-sum":            PushSum,
		"affine-hierarchical": AffineHierarchical,
		"affine-async":        AffineAsync,
	}
	for _, tc := range cases {
		for name, build := range builders {
			values := make([]float64, nw.N())
			if _, err := build(tc.opts...).Run(nw, values); err == nil {
				t.Errorf("%s accepted %s", name, tc.name)
			}
		}
	}
}

// TestWithFaultsBurstLossAllAlgorithms: the Gilbert–Elliott medium works
// through the facade for every algorithm and preserves the mean.
func TestWithFaultsBurstLossAllAlgorithms(t *testing.T) {
	nw, err := NewNetwork(384, WithSeed(62), WithRadiusMultiplier(2.0))
	if err != nil {
		t.Fatal(err)
	}
	const ge = "ge:0.025/0.1/0.01/0.95"
	algos := []Algorithm{
		Boyd(WithTargetError(1e-2), WithFaults(ge), WithMaxTicks(20_000_000)),
		Geographic(WithTargetError(1e-2), WithFaults(ge), WithMaxTicks(20_000_000)),
		PushSum(WithTargetError(1e-2), WithFaults(ge), WithMaxTicks(20_000_000)),
		AffineHierarchical(WithTargetError(1e-2), WithFaults(ge)),
		AffineAsync(WithTargetError(3e-2), WithFaults(ge), WithMaxTicks(60_000_000)),
	}
	for _, algo := range algos {
		t.Run(algo.Name(), func(t *testing.T) {
			values := make([]float64, nw.N())
			for i, p := range nw.Positions() {
				values[i] = p[0] * 5
			}
			want := Mean(values)
			res, err := algo.Run(nw, values)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("%s under burst loss did not converge: final err %v", algo.Name(), res.FinalErr)
			}
			// Push-sum's outputs are ratio estimates s/w: their mean only
			// approximates the target (the exact invariant is Σs/Σw,
			// checked in the engine tests). The pairwise-averaging
			// algorithms preserve the mean exactly.
			tol := 1e-9
			if algo.Name() == "push-sum" {
				tol = 1e-2
			}
			if math.Abs(Mean(values)-want) > tol {
				t.Fatalf("mean drifted under burst loss: %v -> %v", want, Mean(values))
			}
			if res.Alive != nil {
				t.Fatal("loss-only run reported a liveness mask")
			}
		})
	}
}

// TestWithChurnReportsLiveness: churn runs expose the per-node liveness
// mask so callers can evaluate survivor consensus.
func TestWithChurnReportsLiveness(t *testing.T) {
	nw, err := NewNetwork(256, WithSeed(63), WithRadiusMultiplier(2.0))
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, nw.N())
	for i, p := range nw.Positions() {
		values[i] = p[1] * 3
	}
	res, err := Boyd(WithTargetError(1e-3), WithChurn(1_500_000, 0), WithMaxTicks(2_000_000)).Run(nw, values)
	if err != nil {
		t.Fatal(err)
	}
	if res.Alive == nil || len(res.Alive) != nw.N() {
		t.Fatalf("churn run liveness mask: %v", res.Alive)
	}
	dead := 0
	for _, a := range res.Alive {
		if !a {
			dead++
		}
	}
	if dead == 0 || dead == nw.N() {
		t.Fatalf("want partial churn, got %d/%d dead", dead, nw.N())
	}
}

// TestPushSumFacade: the fifth algorithm family is exposed end to end.
func TestPushSumFacade(t *testing.T) {
	nw, err := NewNetwork(256, WithSeed(64), WithRadiusMultiplier(2.0))
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, nw.N())
	for i, p := range nw.Positions() {
		values[i] = p[0] + p[1]
	}
	want := Mean(values)
	res, err := PushSum(WithTargetError(1e-3), WithMaxTicks(20_000_000)).Run(nw, values)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "push-sum" || !res.Converged {
		t.Fatalf("push-sum facade run: %+v", res)
	}
	for i, v := range values {
		if math.Abs(v-want) > 0.05 {
			t.Fatalf("node %d estimate %v far from mean %v", i, v, want)
		}
	}
}

// TestChurnDeterministic: fault-model runs replay bit-for-bit.
func TestChurnDeterministic(t *testing.T) {
	nw, err := NewNetwork(192, WithSeed(65), WithRadiusMultiplier(2.0))
	if err != nil {
		t.Fatal(err)
	}
	run := func() (uint64, float64) {
		values := make([]float64, nw.N())
		for i, p := range nw.Positions() {
			values[i] = p[0]
		}
		res, err := Boyd(WithTargetError(1e-3), WithFaults("bernoulli:0.1+churn:500000/100000"),
			WithMaxTicks(1_000_000)).Run(nw, values)
		if err != nil {
			t.Fatal(err)
		}
		return res.Transmissions, res.FinalErr
	}
	tx1, err1 := run()
	tx2, err2 := run()
	if tx1 != tx2 || err1 != err2 {
		t.Fatalf("churn run not deterministic: (%d, %v) vs (%d, %v)", tx1, err1, tx2, err2)
	}
}
