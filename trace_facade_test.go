package geogossip

import (
	"bytes"
	"strings"
	"testing"
)

func TestWithTraceWriter(t *testing.T) {
	nw, err := NewNetwork(256, WithSeed(70), WithRadiusMultiplier(2.0))
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, nw.N())
	for i, p := range nw.Positions() {
		values[i] = p[0]
	}
	var buf bytes.Buffer
	res, err := AffineHierarchical(WithTargetError(1e-2), WithTraceWriter(&buf)).Run(nw, values)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("run did not converge: %+v", res)
	}
	out := buf.String()
	if !strings.Contains(out, "far") {
		t.Fatalf("trace output missing far events:\n%.300s", out)
	}
	if strings.Count(out, "\n") < 2 {
		t.Fatalf("trace output too short: %q", out)
	}
}
