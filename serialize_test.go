package geogossip

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig, err := NewNetwork(512, WithSeed(50), WithRadiusMultiplier(1.8))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != orig.N() || loaded.Edges() != orig.Edges() ||
		loaded.Radius() != orig.Radius() || loaded.HierarchyLevels() != orig.HierarchyLevels() {
		t.Fatalf("round trip changed network: %d/%d edges, %v/%v radius, %d/%d levels",
			loaded.Edges(), orig.Edges(), loaded.Radius(), orig.Radius(),
			loaded.HierarchyLevels(), orig.HierarchyLevels())
	}
	lp, op := loaded.Positions(), orig.Positions()
	for i := range op {
		if lp[i] != op[i] {
			t.Fatalf("position %d changed: %v -> %v", i, op[i], lp[i])
		}
	}
	// An algorithm run on the loaded network behaves identically.
	mk := func(nw *Network) *Result {
		values := make([]float64, nw.N())
		for i, p := range nw.Positions() {
			values[i] = p[0]
		}
		res, err := Boyd(WithTargetError(1e-2), WithRunSeed(9)).Run(nw, values)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(orig), mk(loaded)
	if a.Transmissions != b.Transmissions || a.FinalErr != b.FinalErr {
		t.Fatal("run on loaded network differs from original")
	}
}

func TestSaveLoadPreservesHierarchyOptions(t *testing.T) {
	orig, err := NewNetwork(1024, WithSeed(51), WithFlatHierarchy())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.HierarchyLevels() != orig.HierarchyLevels() {
		t.Fatalf("levels %d != %d", loaded.HierarchyLevels(), orig.HierarchyLevels())
	}
}

// Save writes the binary snapshot format; a loaded network must carry
// the exact adjacency, not a rebuild.
func TestSaveWritesBinarySnapshots(t *testing.T) {
	orig, err := NewNetwork(256, WithSeed(52))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 8 || buf.Bytes()[0] != 0x89 || string(buf.Bytes()[1:4]) != "GGS" {
		t.Fatalf("Save did not write the snapshot magic (got % x)", buf.Bytes()[:8])
	}
}

// The legacy JSON v1 encoding loads forever, sniffed by its leading '{'.
func TestLoadNetworkLegacyJSON(t *testing.T) {
	orig, err := NewNetwork(512, WithSeed(53), WithLeafTarget(24))
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := json.Marshal(networkJSON{
		Version:    networkFormatVersion,
		Radius:     orig.Radius(),
		LeafTarget: 24,
		Points:     orig.Positions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadNetwork(bytes.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Edges() != orig.Edges() || loaded.HierarchyLevels() != orig.HierarchyLevels() {
		t.Fatalf("legacy load: %d/%d edges, %d/%d levels",
			loaded.Edges(), orig.Edges(), loaded.HierarchyLevels(), orig.HierarchyLevels())
	}
}

// Both formats load transparently through a gzip wrapper.
func TestLoadNetworkGzip(t *testing.T) {
	orig, err := NewNetwork(512, WithSeed(54))
	if err != nil {
		t.Fatal(err)
	}
	var plain bytes.Buffer
	if err := orig.Save(&plain); err != nil {
		t.Fatal(err)
	}
	legacy, err := json.Marshal(networkJSON{
		Version: networkFormatVersion,
		Radius:  orig.Radius(),
		Points:  orig.Positions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, raw := range map[string][]byte{"binary": plain.Bytes(), "json": legacy} {
		var zipped bytes.Buffer
		zw := gzip.NewWriter(&zipped)
		if _, err := zw.Write(raw); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadNetwork(&zipped)
		if err != nil {
			t.Fatalf("%s.gz: %v", name, err)
		}
		if loaded.N() != orig.N() || loaded.Edges() != orig.Edges() {
			t.Fatalf("%s.gz round trip changed the network", name)
		}
	}
}

func TestLoadNetworkErrors(t *testing.T) {
	if _, err := LoadNetwork(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadNetwork(strings.NewReader(`{"version":99,"radius":0.1,"points":[]}`)); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := LoadNetwork(strings.NewReader(`{"version":1,"radius":0.1,"points":[[2.5,0.5]]}`)); err == nil {
		t.Fatal("out-of-square point accepted")
	}
	if _, err := LoadNetwork(strings.NewReader(`{"version":1,"radius":-1,"points":[]}`)); err == nil {
		t.Fatal("negative radius accepted")
	}
}
