// Command experiments regenerates every table and figure of the
// reproduction (DESIGN.md §2), writing one report per experiment to the
// results directory plus a combined summary.
//
// Usage:
//
//	experiments [-quick] [-only E1,E14] [-out results]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"geogossip/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		quick   = fs.Bool("quick", false, "reduced sizes and trial counts")
		only    = fs.String("only", "", "comma-separated experiment ids (default: all)")
		out     = fs.String("out", "results", "output directory")
		seed    = fs.Uint64("seed", 1, "base seed")
		workers = fs.Int("workers", 0, "worker pool for multi-trial runners (0 = all cores)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	cfg := experiments.Config{Quick: *quick, Seed: *seed, Workers: *workers}

	summary, err := os.Create(filepath.Join(*out, "SUMMARY.txt"))
	if err != nil {
		return err
	}
	defer summary.Close()

	failures := 0
	for _, r := range experiments.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		start := time.Now()
		fmt.Printf("running %s — %s ...", r.ID, r.Title)
		rep, err := r.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		status := "ok"
		if !rep.OK() {
			status = "SHAPE CHECK FAILED"
			failures++
		}
		fmt.Printf(" %s (%s)\n", status, elapsed)

		f, err := os.Create(filepath.Join(*out, r.ID+".txt"))
		if err != nil {
			return err
		}
		if err := rep.Write(f); err != nil {
			f.Close()
			return err
		}
		f.Close()

		fmt.Fprintf(summary, "%s — %s: %s (%s)\n", r.ID, r.Title, status, elapsed)
		for _, finding := range rep.Findings {
			mark := "PASS"
			if !finding.OK {
				mark = "FAIL"
			}
			fmt.Fprintf(summary, "  [%s] %s: %s\n", mark, finding.Name, finding.Detail)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) failed their shape checks (see %s)", failures, *out)
	}
	fmt.Printf("all reports written to %s/\n", *out)
	return nil
}
