// Command geogossip runs one averaging algorithm on a generated geometric
// random graph and prints the cost summary and convergence trace.
//
// Usage:
//
//	geogossip -n 2048 -algo affine -eps 1e-3 [-seed 1] [-c 1.5] [-curve]
//
// Algorithms: boyd, geographic, geographic-uniform, affine, async.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"geogossip"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "geogossip:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("geogossip", flag.ContinueOnError)
	var (
		n       = fs.Int("n", 1024, "number of sensors")
		c       = fs.Float64("c", 1.5, "radius multiplier in r = c*sqrt(log n / n)")
		seed    = fs.Uint64("seed", 1, "placement seed")
		algo    = fs.String("algo", "affine", "algorithm: boyd | geographic | geographic-uniform | affine | async")
		eps     = fs.Float64("eps", 1e-3, "target relative l2 error")
		ticks   = fs.Uint64("maxticks", 200_000_000, "clock tick cap")
		curve   = fs.Bool("curve", false, "print the sampled (transmissions, error) trajectory")
		flat    = fs.Bool("flat", false, "use a flat single-level hierarchy (ablation)")
		loss    = fs.Float64("loss", 0, "data-packet loss probability")
		save    = fs.String("save", "", "write the generated network to this file as a binary snapshot and exit")
		load    = fs.String("load", "", "load the network from this file instead of generating (binary snapshot, legacy JSON, or either gzipped — sniffed automatically)")
		doTrace = fs.Bool("trace", false, "stream protocol events to stderr (affine algorithms)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var nw *geogossip.Network
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			return err
		}
		nw, err = geogossip.LoadNetwork(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		opts := []geogossip.NetworkOption{
			geogossip.WithSeed(*seed),
			geogossip.WithRadiusMultiplier(*c),
		}
		if *flat {
			opts = append(opts, geogossip.WithFlatHierarchy())
		}
		var err error
		nw, err = geogossip.NewNetwork(*n, opts...)
		if err != nil {
			return err
		}
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := nw.Save(f); err != nil {
			return err
		}
		fmt.Printf("network with %d sensors written to %s\n", nw.N(), *save)
		return nil
	}

	runOpts := []geogossip.RunOption{
		geogossip.WithTargetError(*eps),
		geogossip.WithMaxTicks(*ticks),
		geogossip.WithRunSeed(*seed + 1),
	}
	if *loss > 0 {
		runOpts = append(runOpts, geogossip.WithLossRate(*loss))
	}
	if *doTrace {
		runOpts = append(runOpts, geogossip.WithTraceWriter(os.Stderr))
	}
	var algorithm geogossip.Algorithm
	switch *algo {
	case "boyd":
		algorithm = geogossip.Boyd(runOpts...)
	case "geographic":
		algorithm = geogossip.Geographic(runOpts...)
	case "geographic-uniform":
		algorithm = geogossip.Geographic(append(runOpts, geogossip.WithUniformSampling())...)
	case "affine":
		algorithm = geogossip.AffineHierarchical(runOpts...)
	case "async":
		algorithm = geogossip.AffineAsync(runOpts...)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}

	// Initial field: each sensor measures x·10 + sin(7y) plus its index
	// parity — an arbitrary smooth-plus-rough field.
	values := make([]float64, nw.N())
	for i, p := range nw.Positions() {
		values[i] = p[0]*10 + math.Sin(p[1]*7) + float64(i%2)
	}
	want := geogossip.Mean(values)

	fmt.Printf("network:   n=%d  radius=%.4f  edges=%d  mean degree=%.1f  hierarchy levels=%d\n",
		nw.N(), nw.Radius(), nw.Edges(), nw.MeanDegree(), nw.HierarchyLevels())
	res, err := algorithm.Run(nw, values)
	if err != nil {
		return err
	}
	fmt.Printf("algorithm: %s\n", res.Algorithm)
	fmt.Printf("converged: %v  (final relative error %.3g, target %.3g)\n", res.Converged, res.FinalErr, *eps)
	fmt.Printf("true mean: %.6f   sensor 0 now holds: %.6f\n", want, values[0])
	fmt.Printf("transmissions: %d\n", res.Transmissions)
	keys := make([]string, 0, len(res.Breakdown))
	for k := range res.Breakdown {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if res.Breakdown[k] > 0 {
			fmt.Printf("  %-8s %d\n", k, res.Breakdown[k])
		}
	}
	if *curve {
		fmt.Println("transmissions,relative_error")
		for _, pt := range res.Curve {
			fmt.Printf("%.0f,%.6g\n", pt[0], pt[1])
		}
	}
	return nil
}
