package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"geogossip"
)

// TestTraceviewCrossCheck is the end-to-end acceptance check: a seeded
// run's JSONL trace, replayed by traceview, reports the same
// transmission total as the run's own Result counter.
func TestTraceviewCrossCheck(t *testing.T) {
	nw, err := geogossip.NewNetwork(256, geogossip.WithSeed(80), geogossip.WithRadiusMultiplier(2.0))
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, nw.N())
	for i, p := range nw.Positions() {
		values[i] = p[0]
	}
	path := filepath.Join(t.TempDir(), "run.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := geogossip.AffineAsync(
		geogossip.WithTargetError(1e-2),
		geogossip.WithLossRate(0.1),
		geogossip.WithTraceJSONL(f, 0),
	).Run(nw, values)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("transmissions (hop total): %d\n", res.Transmissions)
	if !strings.Contains(out.String(), want) {
		t.Errorf("summary does not reproduce the result's %d transmissions:\n%s",
			res.Transmissions, out.String())
	}
	if !strings.Contains(out.String(), "most active squares") {
		t.Errorf("summary missing square activity:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "loss timeline") {
		t.Errorf("summary missing loss timeline:\n%s", out.String())
	}

	// Kind filtering drops everything else from the view.
	out.Reset()
	if err := run([]string{"-kinds", "loss", path}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "near") || strings.Contains(out.String(), "far ") {
		t.Errorf("-kinds loss leaked other kinds:\n%s", out.String())
	}

	// Unknown kinds and extra args fail loudly.
	if err := run([]string{"-kinds", "bogus", path}, &out); err == nil {
		t.Error("unknown -kinds accepted")
	}
	if err := run([]string{path, path}, &out); err == nil {
		t.Error("two file arguments accepted")
	}
}
