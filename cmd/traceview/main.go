// Command traceview replays a JSONL protocol trace (as written by
// geogossip.WithTraceJSONL or trace.JSONL) and prints a summary:
// per-kind event counts and hop-cost totals, the busiest squares, and a
// loss timeline over the run's sequence numbers.
//
//	traceview run.jsonl
//	traceview -kinds loss,far -squares 5 -loss-buckets 20 run.jsonl
//	some-producer | traceview
//
// Because every traced event carries its transmission charge in "hops",
// the hop total over all kinds reproduces the run's transmission counter
// exactly on a full (unfiltered, unsampled) trace — traceview is a
// cross-check against Result as much as a viewer. ARQ transport events
// ("retransmit", "timeout") carry zero hops: a retried exchange's full
// bill, retransmissions included, rides on its own near/far/loss event,
// so the cross-check holds under ARQ too.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"geogossip/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("traceview", flag.ContinueOnError)
	var (
		kinds       = fs.String("kinds", "", "comma-separated event kinds to keep (default all): near, far, loss, leaf-done, activate, deactivate, reelect, resync, churn, retransmit, timeout")
		squares     = fs.Int("squares", 10, "number of most-active squares to list (0 = none)")
		lossBuckets = fs.Int("loss-buckets", 10, "loss-timeline resolution in sequence-number windows (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var in io.Reader = os.Stdin
	switch fs.NArg() {
	case 0:
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		return fmt.Errorf("want at most one trace file, got %d arguments", fs.NArg())
	}

	events, err := trace.ReadJSONL(in)
	if err != nil {
		return err
	}
	if *kinds != "" {
		keep := map[trace.Kind]bool{}
		for _, name := range strings.Split(*kinds, ",") {
			k, err := trace.KindFromString(strings.TrimSpace(name))
			if err != nil {
				return fmt.Errorf("-kinds: %w", err)
			}
			keep[k] = true
		}
		filtered := events[:0]
		for _, e := range events {
			if keep[e.Kind] {
				filtered = append(filtered, e)
			}
		}
		events = filtered
	}
	printSummary(out, trace.Summarize(events, *lossBuckets), *squares)
	return nil
}

func printSummary(w io.Writer, s trace.Summary, topSquares int) {
	fmt.Fprintf(w, "events: %d (max seq %d)\n", s.Events, s.MaxSeq)
	kinds := make([]trace.Kind, 0, len(s.Counts))
	for k := range s.Counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-12s %10d events %12d hops\n", k, s.Counts[k], s.Hops[k])
	}
	fmt.Fprintf(w, "transmissions (hop total): %d\n", s.Transmissions)

	if topSquares > 0 && len(s.SquareEvents) > 0 {
		type sq struct {
			id int
			n  uint64
		}
		act := make([]sq, 0, len(s.SquareEvents))
		for id, n := range s.SquareEvents {
			act = append(act, sq{id, n})
		}
		// Most active first; ties by square id so output is deterministic.
		sort.Slice(act, func(i, j int) bool {
			if act[i].n != act[j].n {
				return act[i].n > act[j].n
			}
			return act[i].id < act[j].id
		})
		if len(act) > topSquares {
			act = act[:topSquares]
		}
		fmt.Fprintf(w, "most active squares (%d of %d):\n", len(act), len(s.SquareEvents))
		for _, a := range act {
			fmt.Fprintf(w, "  square %-6d %10d events\n", a.id, a.n)
		}
	}

	if len(s.LossTimeline) > 0 {
		var total uint64
		for _, n := range s.LossTimeline {
			total += n
		}
		fmt.Fprintf(w, "loss timeline (%d windows over seq 1..%d, %d losses):\n", len(s.LossTimeline), s.MaxSeq, total)
		var peak uint64 = 1
		for _, n := range s.LossTimeline {
			if n > peak {
				peak = n
			}
		}
		for i, n := range s.LossTimeline {
			bar := strings.Repeat("#", int(n*40/peak))
			fmt.Fprintf(w, "  [%2d] %8d %s\n", i, n, bar)
		}
	}
}
