package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"time"

	"geogossip"
	"geogossip/internal/obs"
)

// serveObservability binds addr and serves the sweep's live
// introspection endpoints for the duration of the process:
//
//	/metrics        Prometheus text exposition of the sweep registry
//	/progress       JSON progress snapshot (tasks, ETA, caches, allocs)
//	/debug/pprof/*  standard pprof handlers
//
// The listener is returned so the caller can close it (and report the
// bound address, which matters for ":0"). Serving is read-only and
// cannot perturb results: every instrument it reads is atomic.
func serveObservability(addr string, m *geogossip.MetricsRegistry) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	mux := http.NewServeMux()
	mux.Handle("/metrics", m.Handler())
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(progressSnapshot(m, start))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}

// progressJSON is the /progress payload: scheduling state, wall-clock
// estimates, cache effectiveness, and the process's allocation
// footprint.
type progressJSON struct {
	TasksDone    int     `json:"tasks_done"`
	TasksTotal   int     `json:"tasks_total"`
	TasksPending int     `json:"tasks_pending"`
	ElapsedSec   float64 `json:"elapsed_seconds"`
	// EtaSec extrapolates the remaining wall-clock time from the mean
	// task duration so far; -1 until the first task completes.
	EtaSec float64 `json:"eta_seconds"`

	RouteHitRate      float64 `json:"route_cache_hit_rate"`
	FloodHitRate      float64 `json:"flood_cache_hit_rate"`
	ChannelPoolBuilds uint64  `json:"channel_pool_builds"`

	// Distributed-coordinator fields (present only under -serve): worker
	// membership, lease churn, and per-worker completed-task counts.
	DistWorkers         int            `json:"dist_workers,omitempty"`
	DistLeasesActive    int            `json:"dist_leases_active,omitempty"`
	DistLeasesReissued  int            `json:"dist_leases_reissued,omitempty"`
	DistBufferedResults int            `json:"dist_buffered_results,omitempty"`
	DistWorkerTasks     map[string]int `json:"dist_worker_tasks,omitempty"`

	AllocMB    float64 `json:"alloc_mb"`
	HeapMB     float64 `json:"heap_inuse_mb"`
	GCCycles   uint32  `json:"gc_cycles"`
	Goroutines int     `json:"goroutines"`
}

// gaugeKey renders the exposition key of a sweep gauge (labels sorted,
// matching the registry's rendering).
func gaugeKey(name string, labels ...string) string {
	if len(labels) == 0 {
		return name
	}
	key := name + "{"
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			key += ","
		}
		key += fmt.Sprintf("%s=%q", labels[i], labels[i+1])
	}
	return key + "}"
}

func progressSnapshot(m *geogossip.MetricsRegistry, start time.Time) progressJSON {
	vals := m.Values()
	rate := func(hitKind, missKind string) float64 {
		hits := vals[gaugeKey(obs.MetricRouteCacheLookups, "kind", hitKind, "result", "hit")]
		misses := vals[gaugeKey(obs.MetricRouteCacheLookups, "kind", missKind, "result", "miss")]
		if total := hits + misses; total > 0 {
			return hits / total
		}
		return 0
	}
	p := progressJSON{
		ElapsedSec:        time.Since(start).Seconds(),
		EtaSec:            -1,
		RouteHitRate:      rate("route", "route"),
		FloodHitRate:      rate("flood", "flood"),
		ChannelPoolBuilds: uint64(vals[obs.MetricChannelPoolBuilds]),
		Goroutines:        runtime.NumGoroutine(),
	}
	p.TasksDone = int(vals[obs.MetricSweepTasksDone])
	p.TasksTotal = int(vals[obs.MetricSweepTasksTotal])
	p.TasksPending = p.TasksTotal - p.TasksDone
	if _, dist := vals[obs.MetricDistWorkers]; dist {
		p.DistWorkers = int(vals[obs.MetricDistWorkers])
		p.DistLeasesActive = int(vals[obs.MetricDistLeasesActive])
		p.DistLeasesReissued = int(vals[obs.MetricDistLeasesReissued])
		p.DistBufferedResults = int(vals[obs.MetricDistBufferedResults])
		prefix := obs.MetricDistWorkerTasksDone + `{worker="`
		for key, v := range vals {
			rest, ok := strings.CutPrefix(key, prefix)
			if !ok {
				continue
			}
			if worker, ok := strings.CutSuffix(rest, `"}`); ok {
				if p.DistWorkerTasks == nil {
					p.DistWorkerTasks = make(map[string]int)
				}
				p.DistWorkerTasks[worker] = int(v)
			}
		}
	}
	if p.TasksDone > 0 && p.TasksPending >= 0 {
		p.EtaSec = p.ElapsedSec / float64(p.TasksDone) * float64(p.TasksPending)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.AllocMB = float64(ms.TotalAlloc) / (1 << 20)
	p.HeapMB = float64(ms.HeapInuse) / (1 << 20)
	p.GCCycles = ms.NumGC
	return p
}
