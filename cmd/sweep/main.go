// Command sweep runs a parameter grid of gossip-averaging scenarios
// concurrently and writes one JSON result per task, plus an aggregation
// (per-cell statistics and scaling-exponent fits) at the end.
//
// The grid comes from flags:
//
//	sweep -algos boyd,geographic,affine-hierarchical -ns 256,512,1024 -seeds 2 -out grid.jsonl
//
// A fault-model axis sweeps radio media (burst loss, node churn) across
// every algorithm:
//
//	sweep -algos boyd,push-sum -ns 256 -faults perfect,ge:0.05/0.2/0.01/0.6,churn:50000/10000
//
// or from a JSON config file holding a geogossip.SweepSpec:
//
//	sweep -config grid.json -out grid.jsonl
//
// Output is resumable: re-running with -resume skips every task already
// present in -out (a truncated final line from a killed run is
// tolerated) and appends the rest. Results are bit-identical for any
// -workers value, so a resumed or parallelized sweep matches a
// single-core run line for line once sorted by task id.
package main

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"geogossip"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		algos      = fs.String("algos", "boyd,geographic,affine-hierarchical", "comma-separated algorithms")
		ns         = fs.String("ns", "256,512,1024", "comma-separated network sizes")
		seeds      = fs.Int("seeds", 1, "independent placements per grid cell")
		baseSeed   = fs.Uint64("base-seed", 1, "base seed all per-task seeds derive from")
		loss       = fs.String("loss", "", "comma-separated packet-loss rates (default 0)")
		faults     = fs.String("faults", "", "comma-separated fault models: perfect, bernoulli:P, ge:PGB/PBG/EG/EB, jam:CX/CY/R/LOSS[/FROM/UNTIL[/PERIOD]], mjam:CX/CY/R/LOSS/VX/VY, jampoly:LOSS/X1/Y1/..., cut:A/B/C/FROM/UNTIL, churn:UP/DOWN, repchurn:UP/DOWN, hubchurn:UP/DOWN/K, composable with + (default perfect)")
		transports = fs.String("transports", "", "comma-separated transport-reliability fragments to compose onto every fault model: perfect (no transport), delay:fixed/D, delay:uniform/LO/HI, delay:exp/MEAN, reorder:P, dup:P, arq:RETRIES/TIMEOUT/BACKOFF, composable with + (default none)")
		recovery   = fs.String("recovery", "", "comma-separated recovery settings to cross with the grid: off,on (default off; on = re-election for the affine algorithms, restart-from-neighbor resync for boyd/geographic)")
		betas      = fs.String("betas", "", "comma-separated affine multipliers (default engine 2/5)")
		sampling   = fs.String("sampling", "", "comma-separated sampling modes: rejection,uniform")
		hier       = fs.String("hier", "", "comma-separated hierarchy shapes: deep,flat")
		target     = fs.Float64("target", 1e-2, "relative l2 accuracy every run stops at")
		maxTicks   = fs.Uint64("max-ticks", 0, "simulated clock cap per run (0 = default)")
		radius     = fs.Float64("radius", 0, "radius multiplier c (0 = default 1.5)")
		field      = fs.String("field", "", "initial field: smooth or gaussian (default smooth)")
		config     = fs.String("config", "", "JSON file holding the full spec (overrides grid flags)")
		workers    = fs.Int("workers", 0, "worker pool size (0 = all cores)")
		workersB   = fs.Int("workers-build", 0, "construction parallelism per network build: graph scan and hierarchy tables shard across this many goroutines (0 = all cores, 1 = serial; networks are byte-identical at any value)")
		asyncTh    = fs.Float64("async-throttle", 0, "override the async engine's round-serialization factor (0 = engine default; raise with -async-leaf-ticks for large-n async runs, see README Scale)")
		asyncLT    = fs.Int("async-leaf-ticks", 0, "override the async engine's leaf round budget in leaf-rep clock ticks (0 = engine default)")
		out        = fs.String("out", "-", "JSONL output path (- = stdout)")
		resume     = fs.Bool("resume", false, "skip tasks already present in -out and append")
		quiet      = fs.Bool("quiet", false, "suppress progress reporting on stderr")
		agg        = fs.Bool("agg", true, "print per-cell statistics and scaling fits")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile of the sweep to FILE (go tool pprof)")
		memProf    = fs.String("memprofile", "", "write a heap profile to FILE after the sweep")
		listen     = fs.String("listen", "", "serve live observability on ADDR while sweeping: /metrics (Prometheus), /progress (JSON), /debug/pprof/*")
		gz         = fs.Bool("gzip", false, "gzip-compress the -out stream (implied by a .gz suffix; -resume reads both forms transparently)")
		serve      = fs.String("serve", "", "run as distributed-sweep coordinator on ADDR (host:port): lease the grid to -join workers and write -out in canonical task order, byte-identical to a single-process -workers 1 run")
		join       = fs.String("join", "", "run as distributed-sweep worker for the coordinator at ADDR; grid and output flags are ignored (the spec comes from the coordinator)")
		leaseN     = fs.Int("lease", 0, "with -serve: tasks per lease (0 = twice the worker's slot count)")
		leaseTO    = fs.Duration("lease-timeout", 0, "with -serve: silence after which a worker's leases are re-issued (0 = 30s)")
		netDir     = fs.String("netdir", "", "network snapshot store directory: load already-persisted networks instead of rebuilding them and persist fresh builds (created if absent; results are bit-identical either way; shareable between runs and between -join workers on one machine)")
		name       = fs.String("name", "", "with -join: worker display name in coordinator gauges (default host/pid)")
		rejoin     = fs.Int("rejoin", 0, "with -join: redial attempts after a failed or lost coordinator connection, 1s apart (lets workers start before the coordinator and outlive its restarts)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *serve != "" && *join != "" {
		return fmt.Errorf("-serve and -join are mutually exclusive")
	}

	// Ctrl-C stops scheduling and drains in-flight tasks; with -resume the
	// next invocation picks up where this one stopped (a restarted -serve
	// coordinator re-validates -out and re-leases only incomplete tasks).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *join != "" {
		return runJoin(ctx, *join, *rejoin, *workers, *workersB, *name, *netDir, *quiet)
	}

	var spec geogossip.SweepSpec
	if *config != "" {
		raw, err := os.ReadFile(*config)
		if err != nil {
			return err
		}
		dec := json.NewDecoder(strings.NewReader(string(raw)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return fmt.Errorf("config %s: %w", *config, err)
		}
	} else {
		var err error
		spec = geogossip.SweepSpec{
			Seeds:            *seeds,
			BaseSeed:         *baseSeed,
			TargetErr:        *target,
			MaxTicks:         *maxTicks,
			RadiusMultiplier: *radius,
			Field:            *field,
			AsyncThrottle:    *asyncTh,
			AsyncLeafTicks:   *asyncLT,
			Algorithms:       splitList(*algos),
			FaultModels:      splitList(*faults),
			Transports:       splitList(*transports),
			Samplings:        splitList(*sampling),
			Hierarchies:      splitList(*hier),
		}
		if spec.Ns, err = parseInts(*ns); err != nil {
			return fmt.Errorf("-ns: %w", err)
		}
		if spec.LossRates, err = parseFloats(*loss); err != nil {
			return fmt.Errorf("-loss: %w", err)
		}
		if spec.Betas, err = parseFloats(*betas); err != nil {
			return fmt.Errorf("-betas: %w", err)
		}
		if spec.Recovery, err = parseRecovery(*recovery); err != nil {
			return fmt.Errorf("-recovery: %w", err)
		}
	}

	if *resume && *out == "-" {
		return fmt.Errorf("-resume needs -out FILE: stdout output cannot be re-read")
	}

	opts := []geogossip.SweepOption{
		geogossip.WithSweepWorkers(*workers),
		geogossip.WithSweepBuildWorkers(*workersB),
	}
	if *netDir != "" {
		opts = append(opts, geogossip.WithSweepNetworkDir(*netDir))
	}

	// -listen exposes the sweep live over HTTP; the registry it serves is
	// the one the sweep reports into. Exposition is read-only and atomic,
	// so results are byte-identical with or without it.
	if *listen != "" {
		m := geogossip.NewMetricsRegistry()
		ln, err := serveObservability(*listen, m)
		if err != nil {
			return fmt.Errorf("-listen: %w", err)
		}
		defer ln.Close()
		opts = append(opts, geogossip.WithSweepMetrics(m))
		if !*quiet {
			fmt.Fprintf(os.Stderr, "observability: http://%s/metrics /progress /debug/pprof/\n", ln.Addr())
		}
	}

	// Resolve the output stream and, under -resume, the prior results.
	gzOut := *gz || strings.HasSuffix(*out, ".gz")
	var sink io.Writer = os.Stdout
	if *out != "-" {
		var prior []geogossip.SweepResult
		if *resume {
			if f, err := os.Open(*out); err == nil {
				prior, err = geogossip.ReadSweepResults(f)
				f.Close()
				if err != nil {
					return fmt.Errorf("resume from %s: %w", *out, err)
				}
				if gzOut {
					// A gzip stream cannot be truncated back to a line
					// boundary in place; rewrite the file as one fresh member
					// holding exactly the recovered results (re-encoding is
					// byte-identical), then append new ones as a second member.
					if err := rewriteGzip(*out, prior); err != nil {
						return err
					}
				} else if err := truncateToLastLine(*out); err != nil {
					// A killed run can leave a truncated final line; drop it so
					// the appended results start on a clean line boundary.
					return err
				}
			} else if !os.IsNotExist(err) {
				return err
			}
		}
		mode := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
		if *resume {
			mode = os.O_CREATE | os.O_WRONLY | os.O_APPEND
		}
		f, err := os.OpenFile(*out, mode, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		sink = f
		if len(prior) > 0 {
			fmt.Fprintf(os.Stderr, "resuming: %d of %d tasks already done\n",
				len(prior), spec.TaskCount())
			// Sweep validates the prior results against the current grid
			// and folds them into the report, so the aggregation below
			// always covers the whole grid.
			opts = append(opts, geogossip.WithSweepResume(prior))
		}
	}
	if gzOut {
		zw := gzip.NewWriter(sink)
		defer zw.Close()
		sink = zw
	}
	opts = append(opts, geogossip.WithSweepJSONL(sink))
	if !*quiet {
		opts = append(opts, geogossip.WithSweepProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d tasks (%.0f%%)", done, total,
				100*float64(done)/float64(total))
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}))
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	runStart := time.Now()
	var rep *geogossip.SweepReport
	var err error
	if *serve != "" {
		ln, lerr := net.Listen("tcp", *serve)
		if lerr != nil {
			return fmt.Errorf("-serve: %w", lerr)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "coordinator: leasing %d tasks on %s\n", spec.TaskCount(), ln.Addr())
		}
		opts = append(opts,
			geogossip.WithSweepLeaseSize(*leaseN),
			geogossip.WithSweepLeaseTimeout(*leaseTO))
		rep, err = geogossip.SweepServe(ctx, ln, spec, opts...)
	} else {
		rep, err = geogossip.Sweep(ctx, spec, opts...)
	}
	runWall := time.Since(runStart)
	if rep != nil && !*quiet {
		printPhaseStats(os.Stderr, rep.NetBuild, runWall)
		printCacheStats(os.Stderr, rep.RouteCache)
		printMemStats(os.Stderr, memBefore)
	}
	if *memProf != "" && rep != nil {
		if err := writeHeapProfile(*memProf); err != nil {
			return err
		}
	}
	if err != nil {
		if err == context.Canceled && rep != nil {
			fmt.Fprintf(os.Stderr, "\ninterrupted after %d tasks; re-run with -resume to continue\n",
				len(rep.Results))
			return nil
		}
		return err
	}
	if *agg {
		aggStart := time.Now()
		printAggregation(os.Stdout, rep)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "phase aggregate: %v wall, peak RSS %s\n",
				time.Since(aggStart).Round(time.Millisecond), rssLabel())
		}
	}
	return nil
}

// runJoin runs the worker side of a distributed sweep: execute leases
// from the coordinator at addr until its grid completes, redialing up to
// rejoin times on a failed or lost connection (so workers may start
// before the coordinator and outlive its restarts — the coordinator's
// lease re-issue and resume logic replays whatever was lost).
func runJoin(ctx context.Context, addr string, rejoin, workers, buildWorkers int, name, netDir string, quiet bool) error {
	opts := []geogossip.SweepOption{
		geogossip.WithSweepWorkers(workers),
		geogossip.WithSweepBuildWorkers(buildWorkers),
		geogossip.WithSweepWorkerName(name),
	}
	if netDir != "" {
		opts = append(opts, geogossip.WithSweepNetworkDir(netDir))
	}
	if !quiet {
		opts = append(opts, geogossip.WithSweepProgress(func(done, _ int) {
			fmt.Fprintf(os.Stderr, "\rworker: %d task(s) done", done)
		}))
	}
	for attempt := 0; ; attempt++ {
		err := geogossip.SweepJoin(ctx, addr, opts...)
		if !quiet {
			fmt.Fprintln(os.Stderr)
		}
		if err == nil {
			return nil
		}
		if ctx.Err() != nil || attempt >= rejoin {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "worker: %v; rejoining %s (attempt %d/%d)\n",
				err, addr, attempt+1, rejoin)
		}
		select {
		case <-time.After(time.Second):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// rewriteGzip rewrites path as a single fresh gzip stream holding
// exactly the given results — the gzip analogue of truncateToLastLine:
// a killed -gzip run leaves a stream cut mid-block, which cannot be
// trimmed in place, so the recovered lines are re-encoded (the encoding
// is canonical, hence byte-identical) behind a temp-file rename.
func rewriteGzip(path string, results []geogossip.SweepResult) error {
	tmp := path + ".resume-tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	zw := gzip.NewWriter(f)
	if err := geogossip.WriteSweepResults(zw, results); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := zw.Close(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// printPhaseStats reports the construct and run phases: distinct network
// builds with their summed construction wall-clock and bytes-per-node
// footprint, then the whole-sweep wall-clock, each with the process's
// peak RSS so far (VmHWM; includes construction — the high-water figure
// the n=10⁶ recipe budgets against).
func printPhaseStats(w io.Writer, nb geogossip.SweepNetBuildStats, runWall time.Duration) {
	if nb.Networks > 0 {
		fmt.Fprintf(w, "phase construct: %d network(s), %d nodes, %.2fs build wall, %.1f MB resident (%.1f bytes/node)\n",
			nb.Networks, nb.Nodes, nb.BuildSeconds,
			float64(nb.GraphBytes+nb.HierarchyBytes)/(1<<20), nb.BytesPerNode())
	}
	if nb.Loads > 0 || nb.StoreMisses > 0 || nb.StoreBytes > 0 {
		fmt.Fprintf(w, "netstore: %d loaded, %d built, %.2fs load wall, %.1f MB written\n",
			nb.Loads, nb.StoreMisses, nb.LoadSeconds, float64(nb.StoreBytes)/(1<<20))
	}
	fmt.Fprintf(w, "phase run: %v wall, peak RSS %s\n", runWall.Round(time.Millisecond), rssLabel())
}

// rssLabel renders the process peak RSS, or "n/a" where the kernel does
// not expose it.
func rssLabel() string {
	if rss := peakRSSBytes(); rss > 0 {
		return fmt.Sprintf("%.1f MB", float64(rss)/(1<<20))
	}
	return "n/a"
}

// peakRSSBytes reads the process's peak resident set size (VmHWM) from
// /proc/self/status, returning 0 on platforms without procfs.
func peakRSSBytes() int64 {
	raw, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// printCacheStats extends the progress summary with the shared route
// cache's effectiveness: how much deterministic routing work the tasks
// of each network build pooled instead of recomputing.
func printCacheStats(w io.Writer, s geogossip.SweepRouteCacheStats) {
	if s.RouteHits+s.RouteMisses+s.FloodHits+s.FloodMisses == 0 {
		return
	}
	fmt.Fprintf(w, "route cache: %.1f%% route hits (%d/%d), %.1f%% flood hits (%d/%d)\n",
		100*s.RouteHitRate(), s.RouteHits, s.RouteHits+s.RouteMisses,
		100*s.FloodHitRate(), s.FloodHits, s.FloodHits+s.FloodMisses)
}

// writeHeapProfile forces a GC (so the profile reflects live data, not
// garbage) and writes the heap profile to path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("-memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("-memprofile: %w", err)
	}
	return nil
}

func printAggregation(w io.Writer, rep *geogossip.SweepReport) {
	// The transport and simulated-time columns appear only when the grid
	// swept a transport axis, keeping transport-free tables unchanged.
	hasTransport := false
	for _, c := range rep.Cells {
		if c.Transport != "" || c.SimSeconds != nil {
			hasTransport = true
			break
		}
	}
	if hasTransport {
		fmt.Fprintf(w, "\n%-22s %6s %5s %-18s %-18s %3s %5s %5s  %14s %12s %10s %10s %6s\n",
			"algorithm", "n", "loss", "faults", "transport", "rec", "beta", "conv", "tx mean", "tx std", "sim s", "err p50", "fail")
	} else {
		fmt.Fprintf(w, "\n%-22s %6s %5s %-18s %3s %5s %5s  %14s %12s %10s %6s\n",
			"algorithm", "n", "loss", "faults", "rec", "beta", "conv", "tx mean", "tx std", "err p50", "fail")
	}
	for _, c := range rep.Cells {
		if hasTransport {
			simMean := 0.0
			if c.SimSeconds != nil {
				simMean = c.SimSeconds.Mean
			}
			fmt.Fprintf(w, "%-22s %6d %5.2f %-18s %-18s %3s %5.2f %2d/%2d  %14.0f %12.0f %10.3g %10.2e %6d\n",
				c.Algorithm, c.N, c.LossRate, faultLabel(c.FaultModel), faultLabel(c.Transport),
				recLabel(c.Recover), c.Beta, c.ConvergedCount, c.Count,
				c.Transmissions.Mean, c.Transmissions.Std, simMean, c.FinalErr.P50, c.Errors)
			continue
		}
		fmt.Fprintf(w, "%-22s %6d %5.2f %-18s %3s %5.2f %2d/%2d  %14.0f %12.0f %10.2e %6d\n",
			c.Algorithm, c.N, c.LossRate, faultLabel(c.FaultModel), recLabel(c.Recover), c.Beta,
			c.ConvergedCount, c.Count,
			c.Transmissions.Mean, c.Transmissions.Std, c.FinalErr.P50, c.Errors)
	}
	if len(rep.Fits) > 0 {
		fmt.Fprintf(w, "\nscaling fits (transmissions ~ C·n^p):\n")
		for _, f := range rep.Fits {
			label := ""
			if f.Transport != "" {
				label = " transport=" + f.Transport
			}
			fmt.Fprintf(w, "  %-22s loss=%.2f faults=%s%s rec=%s beta=%.2f  p=%.3f  C=%.3g  R2=%.3f  (%d sizes)\n",
				f.Algorithm, f.LossRate, faultLabel(f.FaultModel), label, recLabel(f.Recover), f.Beta, f.Exponent, f.Constant, f.R2, f.Points)
		}
	}
	if len(rep.LossFits) > 0 {
		fmt.Fprintf(w, "\ncost-vs-loss fits (transmissions ~ C·(1/(1-p))^q over the fault grid):\n")
		for _, f := range rep.LossFits {
			fmt.Fprintf(w, "  %-22s n=%-6d rec=%s beta=%.2f  q=%.3f  C=%.3g  R2=%.3f  (%d cells)\n",
				f.Algorithm, f.N, recLabel(f.Recover), f.Beta, f.Exponent, f.Constant, f.R2, f.Points)
		}
	}
}

// recLabel renders the recovery column.
func recLabel(on bool) string {
	if on {
		return "on"
	}
	return "-"
}

// parseRecovery reads the -recovery axis: on/off (also true/false, 1/0).
func parseRecovery(s string) ([]bool, error) {
	var out []bool
	for _, part := range splitList(s) {
		switch strings.ToLower(part) {
		case "on", "true", "1":
			out = append(out, true)
		case "off", "false", "0":
			out = append(out, false)
		default:
			return nil, fmt.Errorf("bad recovery setting %q (want on or off)", part)
		}
	}
	return out, nil
}

// printMemStats surfaces the sweep's allocation and GC footprint — the
// quantity the pooled run states exist to hold down at grid scale — as
// deltas against the pre-sweep baseline, so setup work (flag parsing,
// resume-file reading) is not attributed to the grid.
func printMemStats(w io.Writer, before runtime.MemStats) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "mem: %.1f MB allocated by the sweep (%d objects), %.1f MB heap in use, %d GC cycles\n",
		float64(ms.TotalAlloc-before.TotalAlloc)/(1<<20), ms.Mallocs-before.Mallocs,
		float64(ms.HeapInuse)/(1<<20), ms.NumGC-before.NumGC)
}

// faultLabel renders the fault-model column, naming the default axis
// value explicitly so the table stays scannable.
func faultLabel(fm string) string {
	if fm == "" {
		return "-"
	}
	return fm
}

// truncateToLastLine cuts path back to the end of its last complete
// (newline-terminated) line, scanning backwards in chunks so multi-GB
// output files are never loaded whole.
func truncateToLastLine(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return err
	}
	size := info.Size()
	const chunk = 1 << 20
	buf := make([]byte, chunk)
	for end := size; end > 0; {
		start := end - chunk
		if start < 0 {
			start = 0
		}
		b := buf[:end-start]
		if _, err := f.ReadAt(b, start); err != nil {
			return err
		}
		if end == size && b[len(b)-1] == '\n' {
			return nil // already ends on a line boundary
		}
		if i := strings.LastIndexByte(string(b), '\n'); i >= 0 {
			return os.Truncate(path, start+int64(i)+1)
		}
		end = start
	}
	return os.Truncate(path, 0) // no newline at all: drop the partial line
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
