package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"geogossip"
)

// TestServeObservability boots the live endpoint stack on an ephemeral
// port and checks all three surfaces: Prometheus /metrics, the JSON
// /progress snapshot, and pprof.
func TestServeObservability(t *testing.T) {
	m := geogossip.NewMetricsRegistry()
	ln, err := serveObservability("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	base := "http://" + ln.Addr().String()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	// A sweep populates the registry; here it is enough that scraping an
	// empty one yields a well-formed (possibly headerless) exposition and
	// that a populated one shows the series.
	body, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Every sample line is "series value": the value after the last
		// space must parse as a float.
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Errorf("/metrics line not parseable: %q", line)
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &v); err != nil {
			t.Errorf("/metrics value not parseable in %q: %v", line, err)
		}
	}

	body, ct = get("/progress")
	if !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/progress content type %q", ct)
	}
	var p progressJSON
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("/progress not valid JSON: %v\n%s", err, body)
	}
	if p.EtaSec != -1 {
		t.Errorf("ETA before any task = %v, want -1", p.EtaSec)
	}
	if p.Goroutines <= 0 || p.AllocMB <= 0 {
		t.Errorf("runtime stats missing: %+v", p)
	}

	if body, _ = get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}
