package geogossip

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"geogossip/internal/trace"
)

// TestTraceTotalsMatchResult is the headline cross-check: every traced
// event carries its transmission charge in hops, so replaying the full
// (unfiltered, unsampled) JSONL stream with the trace summarizer —
// exactly what cmd/traceview does — must reproduce the run's counters
// for each of the five engines.
func TestTraceTotalsMatchResult(t *testing.T) {
	nw, err := NewNetwork(256, WithSeed(70), WithRadiusMultiplier(2.0))
	if err != nil {
		t.Fatal(err)
	}
	algos := []struct {
		name string
		make func(opts ...RunOption) Algorithm
		// harness engines trace every paid loss as a loss event; the
		// round-structured recursive engine folds leaf-level loss charges
		// into leaf-done events instead, so the loss-count identity only
		// holds for the other four.
		lossEvents bool
	}{
		{"boyd", Boyd, true},
		{"geographic", Geographic, true},
		{"push-sum", PushSum, true},
		{"affine-hierarchical", AffineHierarchical, false},
		{"affine-async", AffineAsync, true},
	}
	for _, a := range algos {
		t.Run(a.name, func(t *testing.T) {
			values := make([]float64, nw.N())
			for i, p := range nw.Positions() {
				values[i] = p[0] + 3*p[1]
			}
			var buf bytes.Buffer
			res, err := a.make(
				WithTargetError(1e-2),
				WithLossRate(0.15),
				WithTraceJSONL(&buf, 0),
			).Run(nw, values)
			if err != nil {
				t.Fatal(err)
			}
			events, err := trace.ReadJSONL(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			s := trace.Summarize(events, 0)
			if s.Transmissions != res.Transmissions {
				t.Errorf("trace hop total %d != result transmissions %d",
					s.Transmissions, res.Transmissions)
			}
			if got := s.Counts[trace.KindReelect]; got != res.Reelections {
				t.Errorf("trace reelections %d != result %d", got, res.Reelections)
			}
			if got := s.Counts[trace.KindResync]; got != res.Resyncs {
				t.Errorf("trace resyncs %d != result %d", got, res.Resyncs)
			}
			if a.lossEvents {
				wantLosses := res.Metrics[`geogossip_losses_total{engine="`+a.name+`"}`]
				if got := float64(s.Counts[trace.KindLoss]); got != wantLosses {
					t.Errorf("trace losses %v != metric %v", got, wantLosses)
				}
			}
		})
	}
}

// TestResultMetricsMatchCounters: the Metrics snapshot agrees with the
// Result's own counters — the same numbers through two pipelines.
func TestResultMetricsMatchCounters(t *testing.T) {
	nw, err := NewNetwork(256, WithSeed(71), WithRadiusMultiplier(2.0))
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, nw.N())
	for i, p := range nw.Positions() {
		values[i] = p[1]
	}
	res, err := AffineAsync(WithTargetError(1e-2), WithChurn(40000, 10000), WithRecovery()).Run(nw, values)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m == nil {
		t.Fatal("Result.Metrics is nil")
	}
	for cat, n := range res.Breakdown {
		key := `geogossip_transmissions_total{category="` + cat + `",engine="affine-async"}`
		if m[key] != float64(n) {
			t.Errorf("%s = %v, want %d", key, m[key], n)
		}
	}
	if got := m[`geogossip_runs_total{engine="affine-async"}`]; got != 1 {
		t.Errorf("runs_total = %v, want 1", got)
	}
	if got := m[`geogossip_reelections_total{engine="affine-async"}`]; got != float64(res.Reelections) {
		t.Errorf("reelections metric %v != result %d", got, res.Reelections)
	}
	if got := m[`geogossip_resyncs_total{engine="affine-async"}`]; got != float64(res.Resyncs) {
		t.Errorf("resyncs metric %v != result %d", got, res.Resyncs)
	}
	if res.Converged {
		if got := m[`geogossip_runs_converged_total{engine="affine-async"}`]; got != 1 {
			t.Errorf("runs_converged_total = %v, want 1", got)
		}
	}
}

// TestResultMetricsDeterministic: same seed, same snapshot.
func TestResultMetricsDeterministic(t *testing.T) {
	nw, err := NewNetwork(200, WithSeed(72), WithRadiusMultiplier(2.0))
	if err != nil {
		t.Fatal(err)
	}
	run := func() map[string]float64 {
		values := make([]float64, nw.N())
		for i, p := range nw.Positions() {
			values[i] = p[0]
		}
		res, err := Boyd(WithTargetError(1e-2), WithLossRate(0.1)).Run(nw, values)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatalf("metrics not deterministic:\n%v\n%v", a, b)
	}
}

// TestWithTraceJSONLFilterAndSampling: kind filtering and 1-in-k
// sampling through the public option.
func TestWithTraceJSONLFilterAndSampling(t *testing.T) {
	nw, err := NewNetwork(200, WithSeed(73), WithRadiusMultiplier(2.0))
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, nw.N())
	for i, p := range nw.Positions() {
		values[i] = p[0]
	}
	var buf bytes.Buffer
	if _, err := Geographic(WithTargetError(1e-2), WithLossRate(0.2),
		WithTraceJSONL(&buf, 2, "loss")).Run(nw, values); err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no loss events sampled")
	}
	for _, e := range events {
		if e.Kind != trace.KindLoss {
			t.Fatalf("kind %v leaked through the loss filter", e.Kind)
		}
	}
	// Unknown kinds fail loudly at Run, not silently.
	if _, err := Boyd(WithTraceJSONL(&buf, 0, "bogus-kind")).Run(nw, values); err == nil {
		t.Fatal("unknown trace kind accepted")
	}
}

// TestSweepObservabilityPassive pins the acceptance criterion: a sweep
// with live metric exposition produces byte-identical JSONL results to
// one without, and the registry's exposition is parseable and carries
// the sweep's progress state.
func TestSweepObservabilityPassive(t *testing.T) {
	spec := SweepSpec{
		Algorithms: []string{"boyd", "affine-hierarchical"},
		Ns:         []int{200, 300},
		Seeds:      2,
		TargetErr:  5e-2,
	}
	var plain bytes.Buffer
	repPlain, err := Sweep(context.Background(), spec, WithSweepJSONL(&plain))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetricsRegistry()
	var wired bytes.Buffer
	repWired, err := Sweep(context.Background(), spec, WithSweepJSONL(&wired), WithSweepMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sortJSONLLines(plain.Bytes()), sortJSONLLines(wired.Bytes())) {
		t.Fatal("JSONL results differ with metrics exposition enabled")
	}
	// Construction wall-clock is the one non-deterministic report field.
	repPlain.NetBuild.BuildSeconds, repWired.NetBuild.BuildSeconds = 0, 0
	if !reflect.DeepEqual(repPlain, repWired) {
		t.Fatal("sweep reports differ with metrics exposition enabled")
	}

	vals := m.Values()
	if got := vals["geogossip_sweep_tasks_done"]; got != float64(spec.TaskCount()) {
		t.Errorf("sweep_tasks_done = %v, want %d", got, spec.TaskCount())
	}
	if got := vals["geogossip_sweep_tasks_total"]; got != float64(spec.TaskCount()) {
		t.Errorf("sweep_tasks_total = %v, want %d", got, spec.TaskCount())
	}
	var expo strings.Builder
	if err := m.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	out := expo.String()
	for _, want := range []string{
		"# TYPE geogossip_transmissions_total counter",
		`geogossip_runs_total{engine="boyd"} 4`,
		`geogossip_runs_total{engine="affine-hierarchical"} 4`,
		"geogossip_sweep_tasks_done 8",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestSweepReportMetricsMatchResults: the aggregated registry agrees
// with the per-task results it summarizes.
func TestSweepReportMetricsMatchResults(t *testing.T) {
	spec := SweepSpec{
		Algorithms:  []string{"geographic", "push-sum"},
		Ns:          []int{200},
		Seeds:       2,
		TargetErr:   5e-2,
		FaultModels: []string{"", "bernoulli:0.2"},
	}
	rep, err := Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	wantTx := map[string]uint64{}
	wantRuns := map[string]uint64{}
	for _, r := range rep.Results {
		wantTx[r.Algorithm] += r.Transmissions
		wantRuns[r.Algorithm]++
	}
	for engine, want := range wantRuns {
		if got := rep.Metrics[`geogossip_runs_total{engine="`+engine+`"}`]; got != float64(want) {
			t.Errorf("runs_total{%s} = %v, want %d", engine, got, want)
		}
	}
	for engine, want := range wantTx {
		var got float64
		for _, cat := range []string{"near", "far", "control", "flood"} {
			got += rep.Metrics[`geogossip_transmissions_total{category="`+cat+`",engine="`+engine+`"}`]
		}
		if got != float64(want) {
			t.Errorf("transmissions{%s} = %v, want %d", engine, got, want)
		}
	}
}
