package geogossip

import (
	"errors"
	"math"
	"testing"
)

func TestNewNetworkDefaults(t *testing.T) {
	nw, err := NewNetwork(512)
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() != 512 {
		t.Fatalf("N = %d", nw.N())
	}
	if nw.Radius() <= 0 || nw.Edges() == 0 || nw.MeanDegree() <= 0 {
		t.Fatalf("degenerate network: r=%v edges=%d deg=%v", nw.Radius(), nw.Edges(), nw.MeanDegree())
	}
	if nw.HierarchyLevels() < 1 {
		t.Fatalf("levels = %d", nw.HierarchyLevels())
	}
	pos := nw.Positions()
	if len(pos) != 512 {
		t.Fatalf("positions = %d", len(pos))
	}
	for _, p := range pos {
		if p[0] < 0 || p[0] >= 1 || p[1] < 0 || p[1] >= 1 {
			t.Fatalf("position %v outside unit square", p)
		}
	}
}

func TestNewNetworkDeterministic(t *testing.T) {
	a, err := NewNetwork(256, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNetwork(256, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.Edges() != b.Edges() {
		t.Fatal("same seed, different networks")
	}
	c, err := NewNetwork(256, WithSeed(10))
	if err != nil {
		t.Fatal(err)
	}
	if a.Edges() == c.Edges() && a.Positions()[0] == c.Positions()[0] {
		t.Fatal("different seeds produced identical networks")
	}
}

func TestNewNetworkDisconnected(t *testing.T) {
	// Far below the connectivity threshold.
	_, err := NewNetwork(2048, WithRadiusMultiplier(0.3))
	if !errors.Is(err, ErrNotConnected) {
		t.Fatalf("err = %v, want ErrNotConnected", err)
	}
}

func TestNetworkOptions(t *testing.T) {
	deep, err := NewNetwork(1024, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	flat, err := NewNetwork(1024, WithSeed(3), WithFlatHierarchy())
	if err != nil {
		t.Fatal(err)
	}
	if flat.HierarchyLevels() > 2 {
		t.Fatalf("flat hierarchy has %d levels", flat.HierarchyLevels())
	}
	if deep.HierarchyLevels() < flat.HierarchyLevels() {
		t.Fatal("default hierarchy shallower than flat")
	}
	big, err := NewNetwork(1024, WithSeed(3), WithLeafTarget(2000))
	if err != nil {
		t.Fatal(err)
	}
	if big.HierarchyLevels() != 1 {
		t.Fatalf("huge leaf target still split: %d levels", big.HierarchyLevels())
	}
}

func runAlgorithm(t *testing.T, algo Algorithm, nw *Network, seed uint64) (*Result, []float64, float64) {
	t.Helper()
	values := make([]float64, nw.N())
	// A deterministic non-trivial field: value = x-coordinate + bump.
	for i, p := range nw.Positions() {
		values[i] = p[0]*10 + math.Sin(p[1]*7)
	}
	want := Mean(values)
	res, err := algo.Run(nw, values)
	if err != nil {
		t.Fatal(err)
	}
	return res, values, want
}

func TestAllAlgorithmsAverage(t *testing.T) {
	nw, err := NewNetwork(512, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	algos := []Algorithm{
		Boyd(WithTargetError(1e-2)),
		Geographic(WithTargetError(1e-2)),
		Geographic(WithTargetError(1e-2), WithUniformSampling()),
		AffineHierarchical(WithTargetError(1e-2)),
		AffineAsync(WithTargetError(2e-2), WithMaxTicks(40_000_000)),
	}
	for _, algo := range algos {
		t.Run(algo.Name(), func(t *testing.T) {
			res, values, want := runAlgorithm(t, algo, nw, 1)
			if !res.Converged {
				t.Fatalf("%s did not converge: %+v", algo.Name(), res)
			}
			if math.Abs(Mean(values)-want) > 1e-9 {
				t.Fatalf("mean drifted: %v -> %v", want, Mean(values))
			}
			if res.Transmissions == 0 {
				t.Fatal("no transmissions recorded")
			}
			if len(res.Breakdown) == 0 {
				t.Fatal("no breakdown")
			}
			if len(res.Curve) < 2 {
				t.Fatalf("curve has %d points", len(res.Curve))
			}
		})
	}
}

func TestAlgorithmNames(t *testing.T) {
	cases := map[string]Algorithm{
		"boyd":                Boyd(),
		"geographic":          Geographic(),
		"affine-hierarchical": AffineHierarchical(),
		"affine-async":        AffineAsync(),
	}
	for want, algo := range cases {
		if got := algo.Name(); got != want {
			t.Fatalf("Name() = %q, want %q", got, want)
		}
	}
}

func TestRunSizeMismatch(t *testing.T) {
	nw, err := NewNetwork(64, WithSeed(5), WithRadiusMultiplier(2.5))
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{Boyd(), Geographic(), AffineHierarchical(), AffineAsync()} {
		if _, err := algo.Run(nw, make([]float64, 3)); err == nil {
			t.Fatalf("%s accepted mismatched values", algo.Name())
		}
	}
}

func TestWithBetaAffectsAffine(t *testing.T) {
	nw, err := NewNetwork(512, WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	run := func(beta float64) uint64 {
		values := make([]float64, nw.N())
		for i, p := range nw.Positions() {
			values[i] = p[0]
		}
		res, err := AffineHierarchical(WithTargetError(1e-2), WithBeta(beta)).Run(nw, values)
		if err != nil {
			t.Fatal(err)
		}
		return res.Transmissions
	}
	if run(0.05) <= run(0.4) {
		t.Fatal("tiny beta should cost more transmissions than the paper's 2/5")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestDeterministicRuns(t *testing.T) {
	nw, err := NewNetwork(256, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		values := make([]float64, nw.N())
		for i, p := range nw.Positions() {
			values[i] = p[1]
		}
		res, err := Boyd(WithTargetError(1e-2), WithRunSeed(42)).Run(nw, values)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Transmissions != b.Transmissions || a.FinalErr != b.FinalErr {
		t.Fatal("same run seed produced different results")
	}
}
