package geogossip

import (
	"context"
	"io"
	"time"

	"geogossip/internal/netstore"
	"geogossip/internal/routing"
	"geogossip/internal/sweep"
)

// SweepSpec is a declarative parameter grid for Sweep: every listed axis
// is crossed with every other, and each grid cell runs Seeds independent
// placements. Zero-valued fields default to a single neutral point, so a
// spec only names the axes it sweeps:
//
//	spec := geogossip.SweepSpec{
//	    Algorithms: []string{"boyd", "geographic", "affine-hierarchical"},
//	    Ns:         []int{256, 512, 1024},
//	    Seeds:      2,
//	}
type SweepSpec struct {
	// Algorithms lists protocols: "boyd", "geographic", "push-sum",
	// "affine-hierarchical", "affine-async". Required.
	Algorithms []string
	// Ns lists network sizes. Required.
	Ns []int
	// Seeds is the number of independent placements per cell (default 1).
	Seeds int
	// BaseSeed roots all per-task seed derivation (default 1). Tasks
	// derive their own seeds from it and their coordinates, so results
	// are bit-identical for any worker count.
	BaseSeed uint64
	// LossRates lists packet-loss probabilities (default {0}).
	LossRates []float64
	// FaultModels lists radio fault models in WithFaults spec form
	// ("perfect", "bernoulli:P", "ge:PGB/PBG/EG/EB", spatial forms
	// "jam:CX/CY/R/LOSS[/FROM/UNTIL[/PERIOD]]", "mjam:CX/CY/R/LOSS/VX/VY",
	// "jampoly:LOSS/X1/Y1/...", "cut:A/B/C/FROM/UNTIL", and churn forms
	// "churn:UP/DOWN", "repchurn:UP/DOWN", "hubchurn:UP/DOWN/K",
	// composable via "+"; default {""}, the perfect medium). Entries
	// carrying their own loss model cannot be crossed with non-zero
	// LossRates; churn-only entries compose with the loss axis.
	// Rep-targeted entries only run on the affine algorithms; other
	// engines report a per-task error.
	FaultModels []string
	// Transports lists transport-reliability fragments in WithFaults spec
	// form, composed onto every fault model of the grid: delay models
	// ("delay:fixed/D", "delay:uniform/LO/HI", "delay:exp/MEAN"), the
	// "reorder:P" / "dup:P" decorators and ARQ
	// ("arq:RETRIES/TIMEOUT/BACKOFF"), composable via "+". Entries must be
	// transport-only (loss, fields, cuts and churn belong on FaultModels),
	// and fault models that already carry transport components cannot be
	// crossed with a non-empty transport axis. Empty selects {""}, no
	// transport layer; transport-free tasks keep the exact run seeds of
	// pre-axis grids, so prior sweep output stays bit-identical and
	// resumable.
	Transports []string
	// Recovery lists engine-recovery settings to cross with the grid
	// (typically {false, true} against a churn fault axis): true runs
	// every task with WithRecovery semantics — representative
	// re-election for the affine algorithms, restart-from-neighbor
	// resync for boyd/geographic; push-sum ignores it. Empty selects
	// {false}; recovery-off tasks keep the exact run seeds of pre-axis
	// grids, so prior sweep output stays bit-identical and resumable.
	Recovery []bool
	// Betas lists affine multipliers (default {0}, the engine's 2/5).
	Betas []float64
	// Samplings lists geographic partner sampling modes: "rejection",
	// "uniform" (default rejection).
	Samplings []string
	// Hierarchies lists hierarchy shapes for the affine algorithms:
	// "deep", "flat" (default deep).
	Hierarchies []string
	// TargetErr is the stopping accuracy (default 1e-2).
	TargetErr float64
	// MaxTicks caps the simulated clock of the tick-driven engines
	// (boyd, geographic, affine-async; default 200,000,000). The
	// round-structured affine-hierarchical engine has no clock; its
	// runs are bounded by its own per-square round budgets instead.
	MaxTicks uint64
	// RadiusMultiplier is c in r = c·sqrt(log n / n) (default 1.5).
	RadiusMultiplier float64
	// Field selects initial measurements: "smooth" (worst-case
	// low-frequency field, default) or "gaussian" (iid normals).
	Field string
	// AsyncThrottle overrides the async engine's round-serialization
	// factor for affine-async tasks (default 0 = keep the engine's
	// built-in throttle). The paper scales this factor as n^a; large-n
	// async runs raise it together with AsyncLeafTicks — see the README
	// "Scale" section for a worked n=10^5 configuration.
	AsyncThrottle float64
	// AsyncLeafTicks overrides a leaf representative's round budget for
	// affine-async tasks (default 0 = engine default). Size it to the
	// leaf's actual mixing time when leaves are large (flat hierarchies
	// at big n).
	AsyncLeafTicks int
}

func (s SweepSpec) internal() sweep.Spec {
	return sweep.Spec{
		Algorithms:       s.Algorithms,
		Ns:               s.Ns,
		Seeds:            s.Seeds,
		BaseSeed:         s.BaseSeed,
		LossRates:        s.LossRates,
		FaultModels:      s.FaultModels,
		Transports:       s.Transports,
		Recovery:         s.Recovery,
		Betas:            s.Betas,
		Samplings:        s.Samplings,
		Hierarchies:      s.Hierarchies,
		TargetErr:        s.TargetErr,
		MaxTicks:         s.MaxTicks,
		RadiusMultiplier: s.RadiusMultiplier,
		Field:            s.Field,
		AsyncThrottle:    s.AsyncThrottle,
		AsyncLeafTicks:   s.AsyncLeafTicks,
	}
}

// TaskCount returns the number of runs the grid expands to.
func (s SweepSpec) TaskCount() int { return s.internal().TaskCount() }

// SweepCoords are the grid-cell coordinates shared by tasks, cells and
// fits: one point of the algorithm × n × loss × fault-model × beta ×
// sampling × hierarchy grid.
type SweepCoords struct {
	Algorithm string
	N         int
	LossRate  float64
	// FaultModel is the WithFaults spec the cell ran under; empty for
	// the perfect medium / plain LossRate axis.
	FaultModel string
	// Transport is the transport-reliability fragment (delay/reorder/dup/
	// arq) composed onto the fault model; empty when the cell ran without
	// a transport layer (the SweepSpec.Transports axis).
	Transport string
	// Recover reports whether the cell ran with the engines' recovery
	// protocols on (the SweepSpec.Recovery axis).
	Recover   bool
	Beta      float64
	Sampling  string
	Hierarchy string
}

// SweepResult is the outcome of one grid task.
type SweepResult struct {
	// TaskID is the task's position in the grid expansion; sorting by it
	// yields the canonical order.
	TaskID int
	// SweepCoords are the task's grid-cell coordinates; SeedIndex
	// selects the placement within the cell.
	SweepCoords
	SeedIndex int
	// TargetErr, MaxTicks, RadiusMultiplier, Field and the async budget
	// overrides record the run-level parameters the task executed
	// under, making each result self-describing and checkable on
	// resume.
	TargetErr        float64
	MaxTicks         uint64
	RadiusMultiplier float64
	Field            string
	AsyncThrottle    float64
	AsyncLeafTicks   int
	// NetSeed and RunSeed are the derived seeds the task ran with
	// (recorded so any single task can be replayed in isolation).
	NetSeed uint64
	RunSeed uint64
	// Converged, FinalErr, Transmissions and Breakdown mirror Result.
	Converged     bool
	FinalErr      float64
	Transmissions uint64
	// SimSeconds mirrors Result.SimSeconds: simulated seconds to converge
	// under the task's transport layer, zero without one.
	SimSeconds float64
	Breakdown  map[string]uint64
	// FarExchanges counts long-range affine exchanges (affine algorithms
	// only).
	FarExchanges uint64
	// Err carries a per-task failure (e.g. no connected instance at the
	// derived seeds); the result fields are zero when set.
	Err string
}

// SweepDist summarizes a metric across the seeds of one grid cell.
type SweepDist struct {
	Mean, Std, Min, Max, P50, P90 float64
}

// SweepCell aggregates the seeds of one grid cell.
type SweepCell struct {
	SweepCoords
	// Count is the number of successful runs; ConvergedCount how many
	// reached the target; Errors how many tasks failed outright.
	Count          int
	ConvergedCount int
	Errors         int
	Transmissions  SweepDist
	FinalErr       SweepDist
	// SimSeconds summarizes simulated time to converge; nil for cells that
	// ran without a transport layer.
	SimSeconds *SweepDist
}

// SweepFit is a fitted power law transmissions ≈ Constant·n^Exponent
// across the cells of one algorithm/parameter line. Its coordinates
// carry N = 0: a fit aggregates across network sizes.
type SweepFit struct {
	SweepCoords
	Points   int
	Exponent float64
	Constant float64
	R2       float64
}

// SweepLossFit is a fitted power law transmissions ≈ C·x^Exponent with
// x = 1/(1−p) the retransmission factor of a cell's effective loss rate
// p — the cost-vs-loss scaling of one algorithm at one network size
// across the sweep's fault grid (LossRates and the loss content of
// FaultModels alike).
type SweepLossFit struct {
	Algorithm string
	N         int
	Recover   bool
	Beta      float64
	Sampling  string
	Hierarchy string
	Points    int
	Exponent  float64
	Constant  float64
	R2        float64
}

// SweepRouteCacheStats reports the effectiveness of the sweep's shared
// route/flood caches: tasks running on the same network build pool their
// deterministic routing work (routes and floods are pure functions of
// the immutable graph), so repeated rep↔rep routes and square floods are
// computed once per network instead of once per task.
type SweepRouteCacheStats struct {
	RouteHits, RouteMisses uint64
	FloodHits, FloodMisses uint64
}

// RouteHitRate returns the fraction of route lookups served from cache
// (0 when no routing happened).
func (s SweepRouteCacheStats) RouteHitRate() float64 {
	if total := s.RouteHits + s.RouteMisses; total > 0 {
		return float64(s.RouteHits) / float64(total)
	}
	return 0
}

// FloodHitRate returns the fraction of flood lookups served from cache.
func (s SweepRouteCacheStats) FloodHitRate() float64 {
	if total := s.FloodHits + s.FloodMisses; total > 0 {
		return float64(s.FloodHits) / float64(total)
	}
	return 0
}

// SweepNetBuildStats summarizes the sweep's network constructions: how
// many distinct networks the grid deduplicated to, the wall-clock their
// construction took (summed across builds, which may overlap in time),
// and their resident footprint.
type SweepNetBuildStats struct {
	// Networks is the number of distinct networks the grid materialized;
	// Nodes sums their node counts.
	Networks int
	Nodes    int64
	// Loads is how many of them were loaded from the snapshot store
	// (WithSweepNetworkDir) instead of being constructed.
	Loads int
	// BuildSeconds is the summed construction wall-clock; LoadSeconds the
	// summed snapshot-load wall-clock.
	BuildSeconds float64
	LoadSeconds  float64
	// GraphBytes and HierarchyBytes are the summed resident footprints.
	GraphBytes     int64
	HierarchyBytes int64
	// StoreMisses counts store lookups that fell back to a build;
	// StoreBytes the snapshot bytes this run persisted for later runs.
	StoreMisses uint64
	StoreBytes  int64
}

// BytesPerNode is the summed network footprint divided by the summed
// node count (0 when nothing was built).
func (s SweepNetBuildStats) BytesPerNode() float64 {
	if s.Nodes == 0 {
		return 0
	}
	return float64(s.GraphBytes+s.HierarchyBytes) / float64(s.Nodes)
}

// SweepReport is the output of one sweep: per-task results in canonical
// (task ID) order plus the aggregation over grid cells.
type SweepReport struct {
	Results []SweepResult
	Cells   []SweepCell
	Fits    []SweepFit
	// LossFits reports cost-vs-loss scaling exponents across the fault
	// grid (empty without at least two distinct effective loss rates).
	LossFits []SweepLossFit
	// RouteCache summarizes the shared route/flood cache counters.
	RouteCache SweepRouteCacheStats
	// NetBuild summarizes the construct phase: distinct network builds,
	// their wall-clock, and the bytes-per-node footprint.
	NetBuild SweepNetBuildStats
	// Metrics is the sweep's aggregated observability snapshot: every
	// engine counter and histogram bucket accumulated across the tasks
	// this call executed (resumed tasks did not run, so they contribute
	// nothing), keyed by Prometheus exposition name — the same catalogue
	// as Result.Metrics. Deterministic for a fixed spec at any worker
	// count: integer event counts commute, and scrape-time gauges are
	// excluded.
	Metrics map[string]float64
}

// SweepOption configures Sweep.
type SweepOption func(*sweepConfig)

type sweepConfig struct {
	workers      int
	buildWorkers int
	jsonl        io.Writer
	progress     func(done, total int)
	resume       []SweepResult
	metrics      *MetricsRegistry
	leaseSize    int
	leaseTimeout time.Duration
	workerName   string
	netDir       string
}

// WithSweepWorkers sizes the worker pool (default GOMAXPROCS). Results
// are bit-identical for every worker count.
func WithSweepWorkers(n int) SweepOption {
	return func(c *sweepConfig) { c.workers = n }
}

// WithSweepBuildWorkers sizes the intra-network construction parallelism:
// each distinct network build (graph radius scan, hierarchy tables)
// shards across n goroutines (0 selects all cores, 1 builds serially).
// Every value builds byte-identical networks, so — like the task worker
// pool — it never changes results. Useful when a grid has few distinct
// networks but each is large (e.g. a single n = 10⁶ cell).
func WithSweepBuildWorkers(n int) SweepOption {
	return func(c *sweepConfig) { c.buildWorkers = n }
}

// WithSweepJSONL streams every task result to w as one JSON object per
// line, in completion order. A file sorted by task_id is byte-identical
// regardless of worker count, and feeds WithSweepResume.
func WithSweepJSONL(w io.Writer) SweepOption {
	return func(c *sweepConfig) { c.jsonl = w }
}

// WithSweepProgress reports completion after every task (single
// goroutine, done out of total).
func WithSweepProgress(fn func(done, total int)) SweepOption {
	return func(c *sweepConfig) { c.progress = fn }
}

// WithSweepResume seeds the sweep with results from an interrupted run
// of the same spec (typically parsed by ReadSweepResults from its JSONL
// output). Their tasks are not re-executed; the prior results are
// validated against the current grid — Sweep fails if an ID's
// coordinates disagree, rather than silently mixing two different grids
// — and merged into the returned report, so Results, Cells and Fits
// always cover the whole grid. Only newly executed tasks are streamed
// to WithSweepJSONL.
func WithSweepResume(prior []SweepResult) SweepOption {
	return func(c *sweepConfig) { c.resume = prior }
}

// WithSweepNetworkDir roots a content-addressed network snapshot store
// at dir (created if absent): networks whose snapshot is already
// persisted load in one sequential I/O pass instead of being rebuilt,
// and fresh builds are persisted for later runs. Loaded networks are
// bit-identical to built ones, so results are unaffected; corrupted
// entries are detected by checksum and rebuilt transparently. Concurrent
// sweeps — including distributed workers on one machine — may share the
// directory: entries are written atomically.
func WithSweepNetworkDir(dir string) SweepOption {
	return func(c *sweepConfig) { c.netDir = dir }
}

// WithSweepMetrics makes the sweep report into m instead of a private
// registry, so m can be scraped live (e.g. served over HTTP by
// cmd/sweep -listen) while the sweep runs: per-engine event counters,
// task progress, route-cache hit counters and channel-pool reuse.
// SweepReport.Metrics is snapshotted from the same registry at the end.
// Observability never changes execution: task results are byte-identical
// with or without it.
func WithSweepMetrics(m *MetricsRegistry) SweepOption {
	return func(c *sweepConfig) { c.metrics = m }
}

// ReadSweepResults parses JSONL sweep output (as written by
// WithSweepJSONL) back into results, tolerating a truncated final line
// from a killed run. Feed them to WithSweepResume to continue an
// interrupted sweep — when everything already completed, the resumed
// Sweep executes nothing and just rebuilds the full report.
func ReadSweepResults(r io.Reader) ([]SweepResult, error) {
	internal, err := sweep.ReadResults(r)
	if err != nil {
		return nil, err
	}
	out := make([]SweepResult, 0, len(internal))
	for _, r := range internal {
		out = append(out, fromInternalResult(r))
	}
	return out, nil
}

// WriteSweepResults writes results to w in the exact JSONL form
// WithSweepJSONL streams — one canonical JSON object per line — so
// files rewritten or merged through it stay byte-compatible with sink
// output and with ReadSweepResults.
func WriteSweepResults(w io.Writer, results []SweepResult) error {
	sink := sweep.NewJSONL(w)
	for _, r := range results {
		if err := sink.Write(toInternalResult(r)); err != nil {
			return err
		}
	}
	return nil
}

// Sweep expands the grid and runs every task on a worker pool.
// Per-task seeds derive from BaseSeed and the task's coordinates — never
// from scheduling — so the same spec produces bit-identical results
// whether it runs on one core or all of them. On context cancellation
// the partial report is returned alongside ctx.Err().
func Sweep(ctx context.Context, spec SweepSpec, opts ...SweepOption) (*SweepReport, error) {
	var cfg sweepConfig
	for _, o := range opts {
		o(&cfg)
	}
	reg := cfg.metrics
	if reg == nil {
		reg = NewMetricsRegistry()
	}
	var routeStats routing.CacheStats
	var netStats sweep.NetBuildStats
	iopt := sweep.Options{
		Workers:      cfg.workers,
		BuildWorkers: cfg.buildWorkers,
		Progress:     cfg.progress,
		RouteStats:   &routeStats,
		NetStats:     &netStats,
		Obs:          reg.reg,
	}
	if cfg.netDir != "" {
		store, err := netstore.Open(cfg.netDir)
		if err != nil {
			return nil, err
		}
		iopt.NetStore = store
	}
	for _, r := range cfg.resume {
		iopt.Resume = append(iopt.Resume, toInternalResult(r))
	}
	if cfg.jsonl != nil {
		iopt.Sink = sweep.NewJSONL(cfg.jsonl)
	}
	results, err := sweep.Run(ctx, spec.internal(), iopt)
	return buildReport(results, reg.reg.Flatten(), routeStats, netStats), err
}

// buildReport assembles the public report from internal results plus the
// run's metrics and cache/construction summaries — shared by the local
// Sweep and the distributed SweepServe, so both report identically.
func buildReport(results []sweep.TaskResult, metrics map[string]float64, routeStats routing.CacheStats, netStats sweep.NetBuildStats) *SweepReport {
	rep := &SweepReport{
		Results: make([]SweepResult, 0, len(results)),
		Metrics: metrics,
		RouteCache: SweepRouteCacheStats{
			RouteHits:   routeStats.RouteHits,
			RouteMisses: routeStats.RouteMisses,
			FloodHits:   routeStats.FloodHits,
			FloodMisses: routeStats.FloodMisses,
		},
		NetBuild: SweepNetBuildStats{
			Networks:       netStats.Networks,
			Nodes:          netStats.Nodes,
			Loads:          netStats.Loads,
			BuildSeconds:   netStats.BuildTime.Seconds(),
			LoadSeconds:    netStats.LoadTime.Seconds(),
			GraphBytes:     netStats.GraphBytes,
			HierarchyBytes: netStats.HierBytes,
			StoreMisses:    netStats.StoreMisses,
			StoreBytes:     netStats.StoreBytes,
		},
	}
	for _, r := range results {
		rep.Results = append(rep.Results, fromInternalResult(r))
	}
	agg := sweep.Aggregate(results)
	for _, c := range agg.Cells {
		cell := SweepCell{
			SweepCoords: SweepCoords{
				Algorithm:  c.Algorithm,
				N:          c.N,
				LossRate:   c.LossRate,
				FaultModel: c.FaultModel,
				Transport:  c.Transport,
				Recover:    c.Recover,
				Beta:       c.Beta,
				Sampling:   c.Sampling,
				Hierarchy:  c.Hierarchy,
			},
			Count:          c.Count,
			ConvergedCount: c.ConvergedCount,
			Errors:         c.Errors,
			Transmissions:  SweepDist(c.Transmissions),
			FinalErr:       SweepDist(c.FinalErr),
		}
		if c.SimSeconds != nil {
			d := SweepDist(*c.SimSeconds)
			cell.SimSeconds = &d
		}
		rep.Cells = append(rep.Cells, cell)
	}
	for _, f := range agg.LossFits {
		rep.LossFits = append(rep.LossFits, SweepLossFit{
			Algorithm: f.Algorithm,
			N:         f.N,
			Recover:   f.Recover,
			Beta:      f.Beta,
			Sampling:  f.Sampling,
			Hierarchy: f.Hierarchy,
			Points:    f.Points,
			Exponent:  f.Exponent,
			Constant:  f.Constant,
			R2:        f.R2,
		})
	}
	for _, f := range agg.Fits {
		rep.Fits = append(rep.Fits, SweepFit{
			SweepCoords: SweepCoords{
				Algorithm:  f.Algorithm,
				LossRate:   f.LossRate,
				FaultModel: f.FaultModel,
				Transport:  f.Transport,
				Recover:    f.Recover,
				Beta:       f.Beta,
				Sampling:   f.Sampling,
				Hierarchy:  f.Hierarchy,
			},
			Points:   f.Points,
			Exponent: f.Exponent,
			Constant: f.Constant,
			R2:       f.R2,
		})
	}
	return rep
}

func fromInternalResult(r sweep.TaskResult) SweepResult {
	return SweepResult{
		TaskID: r.TaskID,
		SweepCoords: SweepCoords{
			Algorithm:  r.Algorithm,
			N:          r.N,
			LossRate:   r.LossRate,
			FaultModel: r.FaultModel,
			Transport:  r.Transport,
			Recover:    r.Recover,
			Beta:       r.Beta,
			Sampling:   r.Sampling,
			Hierarchy:  r.Hierarchy,
		},
		SeedIndex:        r.SeedIndex,
		TargetErr:        r.TargetErr,
		MaxTicks:         r.MaxTicks,
		RadiusMultiplier: r.RadiusMultiplier,
		Field:            r.Field,
		AsyncThrottle:    r.AsyncThrottle,
		AsyncLeafTicks:   r.AsyncLeafTicks,
		NetSeed:          r.NetSeed,
		RunSeed:          r.RunSeed,
		Converged:        r.Converged,
		FinalErr:         r.FinalErr,
		Transmissions:    r.Transmissions,
		SimSeconds:       r.SimSeconds,
		Breakdown:        r.Breakdown,
		FarExchanges:     r.FarExchanges,
		Err:              r.Error,
	}
}

func toInternalResult(r SweepResult) sweep.TaskResult {
	return sweep.TaskResult{
		TaskID:           r.TaskID,
		Algorithm:        r.Algorithm,
		N:                r.N,
		SeedIndex:        r.SeedIndex,
		LossRate:         r.LossRate,
		FaultModel:       r.FaultModel,
		Transport:        r.Transport,
		Recover:          r.Recover,
		Beta:             r.Beta,
		Sampling:         r.Sampling,
		Hierarchy:        r.Hierarchy,
		TargetErr:        r.TargetErr,
		MaxTicks:         r.MaxTicks,
		RadiusMultiplier: r.RadiusMultiplier,
		Field:            r.Field,
		AsyncThrottle:    r.AsyncThrottle,
		AsyncLeafTicks:   r.AsyncLeafTicks,
		NetSeed:          r.NetSeed,
		RunSeed:          r.RunSeed,
		Converged:        r.Converged,
		FinalErr:         r.FinalErr,
		Transmissions:    r.Transmissions,
		SimSeconds:       r.SimSeconds,
		Breakdown:        r.Breakdown,
		FarExchanges:     r.FarExchanges,
		Error:            r.Err,
	}
}
