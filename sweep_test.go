package geogossip

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"testing"

	"geogossip/internal/metrics"
	"geogossip/internal/obs"
)

// The acceptance grid: 3 algorithms × 3 sizes × 2 seeds through the
// public API, with the parallel run's JSONL byte-identical (after
// sorting by task ID) to the single-worker run.
func TestSweepAcceptanceGridDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full 3x3x2 comparison grid")
	}
	spec := SweepSpec{
		Algorithms: []string{"boyd", "geographic", "affine-hierarchical"},
		Ns:         []int{256, 512, 1024},
		Seeds:      2,
		TargetErr:  5e-2,
	}
	run := func(workers int) (*SweepReport, []byte) {
		var buf bytes.Buffer
		rep, err := Sweep(context.Background(), spec,
			WithSweepWorkers(workers), WithSweepJSONL(&buf))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rep, buf.Bytes()
	}
	rep1, jsonl1 := run(1)
	repN, jsonlN := run(runtime.NumCPU())
	if len(rep1.Results) != spec.TaskCount() || spec.TaskCount() != 18 {
		t.Fatalf("got %d results, want 18", len(rep1.Results))
	}
	// Construction wall-clock is the one non-deterministic report field;
	// the structural build stats must still agree exactly.
	if rep1.NetBuild.Networks != repN.NetBuild.Networks || rep1.NetBuild.Nodes != repN.NetBuild.Nodes ||
		rep1.NetBuild.GraphBytes != repN.NetBuild.GraphBytes || rep1.NetBuild.HierarchyBytes != repN.NetBuild.HierarchyBytes {
		t.Fatalf("network build stats differ between worker counts:\n%+v\nvs\n%+v", rep1.NetBuild, repN.NetBuild)
	}
	rep1.NetBuild.BuildSeconds, repN.NetBuild.BuildSeconds = 0, 0
	if !reflect.DeepEqual(rep1, repN) {
		t.Fatal("reports differ between 1 worker and NumCPU workers")
	}
	if !bytes.Equal(sortJSONLLines(jsonl1), sortJSONLLines(jsonlN)) {
		t.Fatal("JSONL not byte-identical after sorting by task ID")
	}
	for _, r := range rep1.Results {
		if r.Err != "" {
			t.Fatalf("task %d failed: %s", r.TaskID, r.Err)
		}
		if !r.Converged {
			t.Errorf("task %d (%s n=%d seed=%d) did not converge (err %v)",
				r.TaskID, r.Algorithm, r.N, r.SeedIndex, r.FinalErr)
		}
	}
	// The headline ordering at these sizes: geographic beats boyd on the
	// fitted exponent.
	exp := map[string]float64{}
	for _, f := range rep1.Fits {
		exp[f.Algorithm] = f.Exponent
	}
	if len(exp) != 3 {
		t.Fatalf("got fits for %d algorithms: %+v", len(exp), rep1.Fits)
	}
	if exp["geographic"] >= exp["boyd"] {
		t.Errorf("geographic exponent %v not below boyd %v", exp["geographic"], exp["boyd"])
	}
}

// Lines are unique (each carries its task ID), so sorting them
// normalizes completion order away.
func sortJSONLLines(b []byte) []byte {
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	sort.Strings(lines)
	return []byte(strings.Join(lines, "\n"))
}

func TestSweepResumeMergesPriorResults(t *testing.T) {
	spec := SweepSpec{
		Algorithms:       []string{"boyd"},
		Ns:               []int{96, 128},
		Seeds:            2,
		TargetErr:        5e-2,
		RadiusMultiplier: 2.2,
	}
	var buf bytes.Buffer
	full, err := Sweep(context.Background(), spec, WithSweepJSONL(&buf))
	if err != nil {
		t.Fatal(err)
	}
	// Feed half the output back as "already done": the resumed report
	// must still cover the whole grid, bit-identical to the full run.
	lines := strings.SplitAfter(buf.String(), "\n")
	prior, err := ReadSweepResults(strings.NewReader(strings.Join(lines[:len(lines)/2], "")))
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) == 0 {
		t.Fatal("no completed tasks parsed")
	}
	var resumedOut bytes.Buffer
	resumed, err := Sweep(context.Background(), spec,
		WithSweepResume(prior), WithSweepJSONL(&resumedOut))
	if err != nil {
		t.Fatal(err)
	}
	// Metrics counts events of the runs this Sweep call actually
	// executed, so a resumed sweep reports fewer runs than the full one —
	// compare it separately, then the rest of the report bit-for-bit.
	if got := resumed.Metrics[`geogossip_runs_total{engine="boyd"}`]; got != float64(len(full.Results)-len(prior)) {
		t.Fatalf("resumed sweep counted %v runs, want %d (executed tasks only)", got, len(full.Results)-len(prior))
	}
	// NetBuild, like Metrics, covers only the work this call performed: a
	// resumed sweep skips networks whose tasks all completed earlier.
	resumed.Metrics, full.Metrics = nil, nil
	resumed.NetBuild, full.NetBuild = SweepNetBuildStats{}, SweepNetBuildStats{}
	if !reflect.DeepEqual(resumed, full) {
		t.Fatal("resumed report differs from the uninterrupted run")
	}
	// Only the newly executed tasks stream to the sink (the prior ones
	// are already in the caller's file).
	newLines := strings.Count(resumedOut.String(), "\n")
	if newLines != len(full.Results)-len(prior) {
		t.Fatalf("resumed run streamed %d results, want %d",
			newLines, len(full.Results)-len(prior))
	}
}

func TestSweepResumeRejectsForeignGrid(t *testing.T) {
	spec := SweepSpec{
		Algorithms:       []string{"boyd"},
		Ns:               []int{96, 128},
		Seeds:            2,
		TargetErr:        5e-2,
		RadiusMultiplier: 2.2,
	}
	// A result whose ID maps to different coordinates under this grid.
	prior := []SweepResult{{TaskID: 0, SweepCoords: SweepCoords{Algorithm: "geographic", N: 4096}}}
	if _, err := Sweep(context.Background(), spec, WithSweepResume(prior)); err == nil ||
		!strings.Contains(err.Error(), "different spec") {
		t.Fatalf("foreign-grid resume accepted (err=%v)", err)
	}
	// An ID outside the grid entirely.
	prior = []SweepResult{{TaskID: 99, SweepCoords: SweepCoords{Algorithm: "boyd", N: 96}}}
	if _, err := Sweep(context.Background(), spec, WithSweepResume(prior)); err == nil {
		t.Fatal("out-of-range resume accepted")
	}
	// Same coordinates but different run-level parameters: output from a
	// genuine run of this grid must be rejected once the target accuracy
	// (or the base seed) changes, not silently mixed in.
	var buf bytes.Buffer
	if _, err := Sweep(context.Background(), spec, WithSweepJSONL(&buf)); err != nil {
		t.Fatal(err)
	}
	genuine, err := ReadSweepResults(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	tighter := spec
	tighter.TargetErr = 1e-3
	if _, err := Sweep(context.Background(), tighter, WithSweepResume(genuine[:1])); err == nil ||
		!strings.Contains(err.Error(), "different spec") {
		t.Fatalf("changed -target accepted stale results (err=%v)", err)
	}
	reseeded := spec
	reseeded.BaseSeed = 777
	if _, err := Sweep(context.Background(), reseeded, WithSweepResume(genuine[:1])); err == nil ||
		!strings.Contains(err.Error(), "different spec") {
		t.Fatalf("changed base seed accepted stale results (err=%v)", err)
	}
}

func TestSweepValidatesSpec(t *testing.T) {
	if _, err := Sweep(context.Background(), SweepSpec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := Sweep(context.Background(), SweepSpec{
		Algorithms: []string{"telepathy"}, Ns: []int{64},
	}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// Result.Breakdown must be the caller's to mutate: it may not alias the
// engine's internal per-category counters.
func TestResultBreakdownIsACopy(t *testing.T) {
	internal := &metrics.Result{
		Algorithm:               "boyd",
		Converged:               true,
		Transmissions:           7,
		TransmissionsByCategory: map[string]uint64{"near": 7},
	}
	res := fromMetrics(internal, obs.NewRegistry())
	if !reflect.DeepEqual(res.Breakdown, internal.TransmissionsByCategory) {
		t.Fatalf("breakdown not copied: %v", res.Breakdown)
	}
	res.Breakdown["near"] = 0
	res.Breakdown["sabotage"] = 1
	if internal.TransmissionsByCategory["near"] != 7 || len(internal.TransmissionsByCategory) != 1 {
		t.Fatalf("caller mutation reached internal metrics: %v", internal.TransmissionsByCategory)
	}
	if fromMetrics(&metrics.Result{Algorithm: "x"}, obs.NewRegistry()).Breakdown != nil {
		t.Fatal("nil category map produced a non-nil breakdown")
	}
}
