// Comparison: the three algorithm families head-to-head on the same
// network and the same initial values — the experiment behind the paper's
// headline claim, at a single n.
//
// Nearest-neighbour gossip pays Õ(n²) transmissions, geographic gossip
// Õ(n^1.5), and the affine-hierarchical algorithm n^{1+o(1)}; at
// laptop-scale n the affine algorithm's polylog constant is still the
// dominant term, which this example makes visible (run cmd/experiments
// for the full scaling table E1).
package main

import (
	"fmt"
	"log"
	"math"

	"geogossip"
)

func main() {
	const n = 2048
	const target = 1e-2
	nw, err := geogossip.NewNetwork(n, geogossip.WithSeed(21))
	if err != nil {
		log.Fatal(err)
	}
	base := make([]float64, n)
	for i, pos := range nw.Positions() {
		base[i] = pos[0]*10 + math.Sin(pos[1]*9)
	}

	algos := []geogossip.Algorithm{
		geogossip.Boyd(geogossip.WithTargetError(target)),
		geogossip.Geographic(geogossip.WithTargetError(target)),
		geogossip.AffineHierarchical(geogossip.WithTargetError(target)),
	}
	fmt.Printf("%-22s %14s %12s %10s\n", "algorithm", "transmissions", "final err", "converged")
	for _, algo := range algos {
		values := append([]float64(nil), base...)
		res, err := algo.Run(nw, values)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %14d %12.3g %10v\n", res.Algorithm, res.Transmissions, res.FinalErr, res.Converged)
	}
	fmt.Println("\n(the affine algorithm wins on the fitted exponent, not on the constant;")
	fmt.Println(" see results/E1.txt from cmd/experiments for the scaling fit)")
}
