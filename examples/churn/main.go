// Churn: crash-stop node failure versus the averaging protocols — the
// scenario lossy sensor radios actually face. Plain pairwise averaging
// (Boyd) conserves the value sum, but every node that dies carries away
// un-averaged deviation, so the survivors' consensus drifts off the true
// mean with no way to tell. Push-sum conserves (Σs, Σw) mass exactly —
// mass is stranded in dead nodes, never destroyed — so when crashed
// nodes revive, the stranded mass returns and the estimates land on the
// exact initial mean again.
package main

import (
	"fmt"
	"log"
	"math"

	"geogossip"
)

const (
	n = 512
	// meanUp is the mean node lifetime in clock ticks (n ticks ≈ one
	// unit of simulated time): most nodes crash during the run.
	meanUp = 3_000_000
	// meanDown is the revival scenario's mean downtime.
	meanDown = 400_000
	maxTicks = 6_000_000
)

func values(nw *geogossip.Network) []float64 {
	// A worst-case smooth field: global information must cross the
	// square, so early deaths strand genuinely unmixed values.
	out := make([]float64, nw.N())
	for i, p := range nw.Positions() {
		out[i] = 10*p[0] + math.Sin(7*p[1])
	}
	return out
}

// survivorStats reports the consensus the live nodes actually reached:
// their mean and their spread around it.
func survivorStats(x []float64, alive []bool) (mean, spread float64, count int) {
	for i, a := range alive {
		if a {
			mean += x[i]
			count++
		}
	}
	if count == 0 {
		return 0, 0, 0
	}
	mean /= float64(count)
	for i, a := range alive {
		if a {
			if d := math.Abs(x[i] - mean); d > spread {
				spread = d
			}
		}
	}
	return mean, spread, count
}

func main() {
	nw, err := geogossip.NewNetwork(n, geogossip.WithSeed(41))
	if err != nil {
		log.Fatal(err)
	}
	trueMean := geogossip.Mean(values(nw))
	fmt.Printf("n=%d nodes, true mean %.6f\n\n", nw.N(), trueMean)

	type scenario struct {
		label string
		algo  geogossip.Algorithm
	}
	run := func(sc scenario) {
		x := values(nw)
		res, err := sc.algo.Run(nw, x)
		if err != nil {
			log.Fatal(err)
		}
		alive := res.Alive
		if alive == nil { // no churn, or everyone happened to be up
			alive = make([]bool, len(x))
			for i := range alive {
				alive[i] = true
			}
		}
		mean, spread, count := survivorStats(x, alive)
		fmt.Printf("%-34s %4d/%4d up  consensus %.6f  drift %9.2e  spread %8.1e\n",
			sc.label, count, len(x), mean, math.Abs(mean-trueMean), spread)
	}

	fmt.Println("crash-stop churn (dead nodes never return):")
	for _, sc := range []scenario{
		{"boyd (pairwise averaging)", geogossip.Boyd(
			geogossip.WithTargetError(1e-6),
			geogossip.WithChurn(meanUp, 0),
			geogossip.WithMaxTicks(maxTicks))},
		{"push-sum", geogossip.PushSum(
			geogossip.WithTargetError(1e-6),
			geogossip.WithChurn(meanUp, 0),
			geogossip.WithMaxTicks(maxTicks))},
	} {
		run(sc)
	}
	fmt.Println("\nchurn with revival (crashed nodes return, state intact):")
	for _, sc := range []scenario{
		{"boyd (pairwise averaging)", geogossip.Boyd(
			geogossip.WithTargetError(1e-6),
			geogossip.WithChurn(meanUp, meanDown),
			geogossip.WithMaxTicks(maxTicks))},
		{"push-sum", geogossip.PushSum(
			geogossip.WithTargetError(1e-6),
			geogossip.WithChurn(meanUp, meanDown),
			geogossip.WithMaxTicks(maxTicks))},
	} {
		run(sc)
	}

	fmt.Println(`
(under crash-stop churn the survivors agree tightly with each other —
 small spread — yet sit a measurable drift away from the true mean:
 the deviation the dead carried away is unrecoverable. Push-sum's
 mass-conservation bookkeeping rolls back every unacknowledged push,
 so Σs and Σw over all nodes stay exact; with revival the stranded
 mass rejoins and the drift collapses toward zero.)`)
}
