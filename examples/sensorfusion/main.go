// Sensorfusion: the paper's motivating application — distributed
// estimation on an ad-hoc sensor network. Every sensor takes a noisy
// reading of a planar temperature field; gossip averaging fuses the
// readings so each sensor locally obtains the network-wide estimate
// (whose noise shrinks like 1/sqrt(n)), without any fusion centre.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"

	"geogossip"
)

func main() {
	const n = 2048
	nw, err := geogossip.NewNetwork(n, geogossip.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth: a smooth temperature field over the unit square.
	field := func(x, y float64) float64 {
		return 20 + 5*math.Sin(2*math.Pi*x)*math.Cos(math.Pi*y)
	}
	// Each sensor reads the field at its position plus measurement noise.
	noise := rand.New(rand.NewPCG(12, 34))
	readings := make([]float64, n)
	var fieldMean float64
	for i, pos := range nw.Positions() {
		truth := field(pos[0], pos[1])
		fieldMean += truth
		readings[i] = truth + noise.NormFloat64()*2.0
	}
	fieldMean /= n
	sampleMean := geogossip.Mean(readings)

	fmt.Printf("field mean over sensors: %.4f\n", fieldMean)
	fmt.Printf("noisy sample mean:       %.4f  (what perfect fusion yields)\n", sampleMean)

	res, err := geogossip.AffineHierarchical(geogossip.WithTargetError(1e-4)).Run(nw, readings)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Converged {
		log.Fatalf("did not converge: final error %v", res.FinalErr)
	}

	// Every sensor now holds the fused estimate.
	worst := 0.0
	for _, v := range readings {
		if d := math.Abs(v - sampleMean); d > worst {
			worst = d
		}
	}
	fmt.Printf("after gossip:            every sensor within %.2g of the fused estimate\n", worst)
	fmt.Printf("sensor 0 estimate:       %.4f (individual reading error was ~2.0)\n", readings[0])
	fmt.Printf("cost: %d transmissions (%v)\n", res.Transmissions, res.Breakdown)
}
