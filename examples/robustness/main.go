// Robustness: stress the faithful asynchronous protocol (§4) by sweeping
// its round-serialization throttle — the practical stand-in for the
// paper's n^{-a} rate damping. A low throttle lets long-range exchanges
// fire while subtrees are still averaging (the Lemma 2 noise regime); a
// high throttle serializes rounds at the cost of longer wall-clock time.
package main

import (
	"fmt"
	"log"
	"math"

	"geogossip"
)

func main() {
	const n = 512
	nw, err := geogossip.NewNetwork(n, geogossip.WithSeed(31))
	if err != nil {
		log.Fatal(err)
	}
	base := make([]float64, n)
	for i, pos := range nw.Positions() {
		base[i] = math.Sin(pos[0]*13) + pos[1]
	}

	fmt.Printf("%-10s %12s %14s %10s\n", "throttle", "final err", "transmissions", "converged")
	for _, throttle := range []float64{1, 2, 4, 8, 16} {
		values := append([]float64(nil), base...)
		algo := geogossip.AffineAsync(
			geogossip.WithTargetError(2e-2),
			geogossip.WithThrottle(throttle),
			geogossip.WithMaxTicks(30_000_000),
		)
		res, err := algo.Run(nw, values)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.1f %12.3g %14d %10v\n", throttle, res.FinalErr, res.Transmissions, res.Converged)
	}
	fmt.Println("\n(unthrottled, overlapping rounds feed unaveraged values into the")
	fmt.Println(" Omega(sqrt(n))-coefficient affine update and the system can diverge —")
	fmt.Println(" exactly why the paper damps long-range rates by n^-a; moderate")
	fmt.Println(" throttles already restore reliable convergence)")
}
