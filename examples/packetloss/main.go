// Packetloss: averaging under unreliable radio links. Every data packet
// (single-hop exchange or route leg) is independently dropped with the
// given probability; exchanges commit atomically, so the consensus value
// is preserved and loss only costs extra transmissions and time.
//
// Note the contrast with push-sum-style one-way protocols, where a lost
// message permanently destroys mass — this library's push-sum baseline
// refuses to run with loss for exactly that reason.
package main

import (
	"fmt"
	"log"
	"math"

	"geogossip"
)

func main() {
	const n = 512
	nw, err := geogossip.NewNetwork(n, geogossip.WithSeed(41), geogossip.WithRadiusMultiplier(2.0))
	if err != nil {
		log.Fatal(err)
	}
	base := make([]float64, n)
	for i, pos := range nw.Positions() {
		base[i] = 100 * math.Sin(pos[0]*3) * math.Cos(pos[1]*5)
	}
	want := geogossip.Mean(base)

	fmt.Printf("true mean: %.6f\n\n", want)
	fmt.Printf("%-10s %-22s %14s %12s %10s\n", "loss", "algorithm", "transmissions", "final err", "mean ok")
	for _, loss := range []float64{0, 0.1, 0.3} {
		for _, mk := range []func() geogossip.Algorithm{
			func() geogossip.Algorithm {
				return geogossip.Boyd(geogossip.WithTargetError(1e-2), geogossip.WithLossRate(loss))
			},
			func() geogossip.Algorithm {
				return geogossip.AffineHierarchical(geogossip.WithTargetError(1e-2), geogossip.WithLossRate(loss))
			},
		} {
			values := append([]float64(nil), base...)
			res, err := mk().Run(nw, values)
			if err != nil {
				log.Fatal(err)
			}
			meanOK := math.Abs(geogossip.Mean(values)-want) < 1e-9
			fmt.Printf("%-10s %-22s %14d %12.3g %10v\n",
				fmt.Sprintf("%.0f%%", loss*100), res.Algorithm, res.Transmissions, res.FinalErr, meanOK)
		}
	}
	fmt.Println("\n(loss inflates cost but never corrupts the consensus value:")
	fmt.Println(" exchanges commit atomically, so the field mean is exact at any loss rate)")
}
