// Jamming: geometry-correlated faults versus the averaging protocols.
// The i.i.d. loss models of examples/packetloss treat every packet
// alike; real sensor fields fail by *where* and *when* — an interferer
// blankets a region, a backbone cut severs the field in two, an
// adversary crashes exactly the representative nodes the hierarchy
// routes everything through. Three scenarios:
//
//  1. A jamming disk parked on the unit square degrades geographic
//     gossip in proportion to how much traffic crosses it — long greedy
//     routes through the disk die over and over, so cost explodes while
//     the same disk barely touches a corner-to-corner route that avoids
//     it.
//  2. A partition (cut:…) severs the square down the middle for a time
//     window. No amount of retrying crosses the cut; the two halves
//     converge internally, stall at the global level, then heal and
//     finish — the run survives because the cut drops packets without
//     destroying value mass.
//  3. Adversarial churn kills exactly the nodes holding representative
//     roles at run start (repchurn:… — a decapitation strike; elected
//     successors are outside the attack set). Without recovery the
//     affine protocol's squares go silent and the run stalls; with
//     WithRecovery each square re-elects the member nearest its centre
//     (the paper's own representative rule, restricted to survivors)
//     and the run converges — cheaper than the stalled run, despite
//     paying for the election floods.
package main

import (
	"fmt"
	"log"
	"math"

	"geogossip"
)

const (
	n        = 400
	target   = 1e-2
	maxTicks = 4_000_000
)

func values(nw *geogossip.Network) []float64 {
	// Worst-case smooth field: global information must cross the square —
	// and therefore cross the jammed region.
	out := make([]float64, nw.N())
	for i, p := range nw.Positions() {
		out[i] = 10*p[0] + math.Sin(7*p[1])
	}
	return out
}

func run(nw *geogossip.Network, algo geogossip.Algorithm) *geogossip.Result {
	res, err := algo.Run(nw, values(nw))
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	nw, err := geogossip.NewNetwork(n, geogossip.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: n=%d radius=%.4f levels=%d\n\n", nw.N(), nw.Radius(), nw.HierarchyLevels())

	// Scenario 1: a static jamming disk versus geographic gossip.
	fmt.Println("1. jamming disk (radius 0.2, 90% in-disk loss) vs geographic gossip")
	for _, c := range []struct{ label, spec string }{
		{"clear air           ", "perfect"},
		{"disk at centre      ", "jam:0.5/0.5/0.2/0.9"},
		{"disk in a corner    ", "jam:0.85/0.85/0.2/0.9"},
		{"moving jammer       ", "mjam:0.5/0.5/0.15/0.9/0.00002/0.00003"},
	} {
		res := run(nw, geogossip.Geographic(
			geogossip.WithTargetError(target),
			geogossip.WithMaxTicks(maxTicks),
			geogossip.WithFaults(c.spec),
			geogossip.WithRunSeed(3),
		))
		fmt.Printf("   %s conv=%-5v tx=%9d  err=%.2e\n", c.label, res.Converged, res.Transmissions, res.FinalErr)
	}

	// Scenario 2: partition and heal.
	fmt.Println("\n2. partition/heal: the line x=0.5 severs the field until t=400000")
	for _, c := range []struct{ label, spec string }{
		{"no partition        ", "perfect"},
		{"cut, then heal      ", "cut:1/0/0.5/0/400000"},
	} {
		res := run(nw, geogossip.Boyd(
			geogossip.WithTargetError(target),
			geogossip.WithMaxTicks(maxTicks),
			geogossip.WithFaults(c.spec),
			geogossip.WithRunSeed(3),
		))
		fmt.Printf("   %s conv=%-5v tx=%9d  err=%.2e\n", c.label, res.Converged, res.Transmissions, res.FinalErr)
	}
	fmt.Println("   (the cut drops packets deterministically; value mass is never")
	fmt.Println("   destroyed, so the halves stall, heal, and still reach the true mean)")

	// Scenario 3: adversarial churn against the hierarchy's
	// representatives, with and without re-election.
	fmt.Println("\n3. repchurn (reps crash and revive) vs the async affine protocol")
	for _, withRecovery := range []bool{false, true} {
		opts := []geogossip.RunOption{
			geogossip.WithTargetError(target),
			geogossip.WithMaxTicks(maxTicks),
			geogossip.WithFaults("repchurn:100000/100000"),
			geogossip.WithRunSeed(3),
		}
		label := "no recovery         "
		if withRecovery {
			opts = append(opts, geogossip.WithRecovery())
			label = "re-election enabled "
		}
		res := run(nw, geogossip.AffineAsync(opts...))
		fmt.Printf("   %s conv=%-5v tx=%9d  err=%.2e  reelections=%d resyncs=%d\n",
			label, res.Converged, res.Transmissions, res.FinalErr, res.Reelections, res.Resyncs)
	}
	fmt.Println("   (dead representatives silence whole squares; nearest-alive-member")
	fmt.Println("   takeover keeps the hierarchy exchanging and the run converging.")
	fmt.Println("   repchurn targets the run-start representatives — a decapitation")
	fmt.Println("   strike; elected successors are outside the attack set)")
}
