// Quickstart: build a sensor network, give every sensor a measurement,
// and run the paper's hierarchical affine-gossip algorithm until every
// sensor holds the global average.
package main

import (
	"fmt"
	"log"

	"geogossip"
)

func main() {
	// 1024 sensors placed uniformly at random on the unit square,
	// connected at radius 1.5·sqrt(log n / n).
	nw, err := geogossip.NewNetwork(1024, geogossip.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d sensors, %d links, %d hierarchy levels\n",
		nw.N(), nw.Edges(), nw.HierarchyLevels())

	// Each sensor measures something: here, its own x coordinate.
	values := make([]float64, nw.N())
	for i, pos := range nw.Positions() {
		values[i] = pos[0]
	}
	trueMean := geogossip.Mean(values)

	// Run the paper's algorithm to relative accuracy 1e-4.
	algo := geogossip.AffineHierarchical(geogossip.WithTargetError(1e-4))
	res, err := algo.Run(nw, values)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged: %v after %d transmissions (final error %.2g)\n",
		res.Converged, res.Transmissions, res.FinalErr)
	fmt.Printf("true mean %.6f; sensor 0 now holds %.6f; sensor %d holds %.6f\n",
		trueMean, values[0], nw.N()-1, values[nw.N()-1])
}
