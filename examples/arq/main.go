// ARQ: who should pay for a lossy link — the protocol or the transport?
//
// Gossip protocols are their own retry loop: a lost exchange simply
// doesn't average, and the protocol re-draws partners until the error
// target falls. Classical transports instead hide the loss below the
// protocol with ARQ — retransmit on ack timeout, back off exponentially
// — at the price of retransmission airtime and waiting.
//
// This example runs both repair strategies over the same bursty
// Gilbert–Elliott link and compares their radio cost and (for the ARQ
// runs, which model transport time) simulated seconds per node. The
// printed retransmission and timeout counters come from the run's
// metrics snapshot; the retransmitted airtime is inside Transmissions,
// so the two columns cross-check each other.
package main

import (
	"fmt"
	"log"
	"math"

	"geogossip"
)

func main() {
	const n = 512
	nw, err := geogossip.NewNetwork(n, geogossip.WithSeed(47), geogossip.WithRadiusMultiplier(2.0))
	if err != nil {
		log.Fatal(err)
	}
	base := make([]float64, n)
	for i, pos := range nw.Positions() {
		base[i] = 100 * math.Sin(pos[0]*3) * math.Cos(pos[1]*5)
	}
	want := geogossip.Mean(base)
	fmt.Printf("true mean: %.6f\n\n", want)

	// One bursty link per severity: the bad state loses badLoss of the
	// traffic and bursts last ~10 packets (1/PBadToGood).
	type burst struct {
		label   string
		badLoss float64
	}
	bursts := []burst{
		{"mild", 0.3},
		{"harsh", 0.6},
		{"hostile", 0.9},
	}

	fmt.Printf("%-9s %-16s %14s %13s %9s %10s %12s %9s\n",
		"link", "repair", "transmissions", "retransmits", "timeouts", "sim s", "final err", "mean ok")
	for _, b := range bursts {
		ge := fmt.Sprintf("ge:0.05/0.1/0.01/%g", b.badLoss)
		runs := []struct {
			label string
			opts  []geogossip.RunOption
		}{
			// Engine-level repair: the lost exchange is simply lost; the
			// gossip process itself retries by keeping on gossiping.
			{"engine-retry", []geogossip.RunOption{
				geogossip.WithTargetError(1e-2),
				geogossip.WithFaults(ge),
			}},
			// Transport-level repair: stop-and-wait ARQ under the engine,
			// 3 retries, ack timeout 1 tick, exponential backoff x2, over
			// a per-hop exponential delay so waiting has a clock to burn.
			{"transport-arq", []geogossip.RunOption{
				geogossip.WithTargetError(1e-2),
				geogossip.WithFaults(ge),
				geogossip.WithDelay("exp/0.3"),
				geogossip.WithARQ(3, 1, 2),
			}},
		}
		for _, r := range runs {
			values := append([]float64(nil), base...)
			res, err := geogossip.Geographic(r.opts...).Run(nw, values)
			if err != nil {
				log.Fatal(err)
			}
			retransmits := res.Metrics[`geogossip_arq_retransmissions_total{engine="geographic"}`]
			timeouts := res.Metrics[`geogossip_arq_timeouts_total{engine="geographic"}`]
			meanOK := math.Abs(geogossip.Mean(values)-want) < 1e-9
			fmt.Printf("%-9s %-16s %14d %13.0f %9.0f %10.3g %12.3g %9v\n",
				b.label, r.label, res.Transmissions, retransmits, timeouts, res.SimSeconds, res.FinalErr, meanOK)
		}
	}

	fmt.Println("\n(both strategies keep the consensus exact — exchanges commit atomically —")
	fmt.Println(" so the choice is purely economic: a route leg lost under engine-retry")
	fmt.Println(" throws away the whole route's airtime, which ARQ repairs with one cheap")
	fmt.Println(" retransmission plus backoff time — until the link gets hostile enough")
	fmt.Println(" that the fixed retry budget drains and the advantage erodes)")
}
