// Sweep: the paper's headline comparison as one declarative grid run on
// all cores — three algorithm families × three network sizes × several
// placements, executed concurrently by the sweep engine with per-task
// seed derivation, then aggregated into per-cell statistics and fitted
// scaling exponents.
//
// The point of the engine is that this whole program is the experiment:
// no loops over algorithms, sizes, or seeds, and the results are
// bit-identical whether GOMAXPROCS is 1 or 64. The cmd/sweep CLI exposes
// the same engine with resumable JSONL output for grids that take hours.
package main

import (
	"context"
	"fmt"
	"log"

	"geogossip"
)

func main() {
	spec := geogossip.SweepSpec{
		Algorithms: []string{"boyd", "geographic", "affine-hierarchical"},
		Ns:         []int{256, 512, 1024},
		Seeds:      3,
		TargetErr:  1e-2,
	}
	fmt.Printf("running %d tasks on all cores...\n", spec.TaskCount())
	rep, err := geogossip.Sweep(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %6s %9s  %14s %12s\n",
		"algorithm", "n", "converged", "tx mean", "tx p90")
	for _, c := range rep.Cells {
		fmt.Printf("%-22s %6d %6d/%-2d  %14.0f %12.0f\n",
			c.Algorithm, c.N, c.ConvergedCount, c.Count,
			c.Transmissions.Mean, c.Transmissions.P90)
	}

	fmt.Println("\nfitted transmissions ~ C·n^p (the paper's Table 1 exponents):")
	for _, f := range rep.Fits {
		fmt.Printf("  %-22s p=%.3f (R2=%.3f over %d sizes)\n",
			f.Algorithm, f.Exponent, f.R2, f.Points)
	}
}
