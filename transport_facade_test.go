package geogossip

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"geogossip/internal/trace"
)

// TestTransportOptionValidation: WithDelay and WithARQ defer validation
// to Run and reject malformed models and conflicts with WithFaults.
func TestTransportOptionValidation(t *testing.T) {
	nw, err := NewNetwork(96, WithSeed(70), WithRadiusMultiplier(2.5))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts []RunOption
	}{
		{"unknown delay distribution", []RunOption{WithDelay("trapezoid/1")}},
		{"non-positive fixed delay", []RunOption{WithDelay("fixed/0")}},
		{"inverted uniform delay bounds", []RunOption{WithDelay("uniform/0.5/0.2")}},
		{"zero arq retries", []RunOption{WithARQ(0, 1, 2)}},
		{"negative arq retries", []RunOption{WithARQ(-1, 1, 2)}},
		{"negative arq timeout", []RunOption{WithARQ(2, -1, 2)}},
		{"arq backoff below one", []RunOption{WithARQ(2, 1, 0.5)}},
		{"delay option and delay fault component", []RunOption{WithDelay("exp/0.5"), WithFaults("delay:fixed/1")}},
		{"arq option and arq fault component", []RunOption{WithARQ(2, 1, 2), WithFaults("arq:3/1/2")}},
	}
	for _, tc := range cases {
		values := make([]float64, nw.N())
		_, err := Boyd(tc.opts...).Run(nw, values)
		if err == nil {
			t.Errorf("Run accepted %s", tc.name)
		}
	}
	// Conflict errors must name the clashing option, not just fail.
	_, err = Boyd(WithARQ(2, 1, 2), WithFaults("arq:3/1/2")).Run(nw, make([]float64, nw.N()))
	if err == nil || !strings.Contains(err.Error(), "WithARQ") {
		t.Fatalf("arq conflict error %v does not name WithARQ", err)
	}
}

// TestTransportFacadeAllAlgorithms: delay + ARQ over a bursty medium
// works through the facade for every algorithm, preserves the mean, and
// surfaces simulated time and retransmission counters.
func TestTransportFacadeAllAlgorithms(t *testing.T) {
	nw, err := NewNetwork(256, WithSeed(62), WithRadiusMultiplier(2.2))
	if err != nil {
		t.Fatal(err)
	}
	opts := func() []RunOption {
		return []RunOption{
			WithTargetError(1e-2),
			WithFaults("ge:0.025/0.1/0.01/0.95"),
			WithDelay("exp/0.3"),
			WithARQ(2, 1, 2),
			WithMaxTicks(20_000_000),
		}
	}
	algos := []Algorithm{
		Boyd(opts()...),
		Geographic(opts()...),
		PushSum(opts()...),
		AffineHierarchical(opts()...),
		AffineAsync(opts()...),
	}
	for _, algo := range algos {
		values := make([]float64, nw.N())
		var want float64
		for i := range values {
			values[i] = float64(i % 17)
			want += values[i]
		}
		want /= float64(len(values))
		res, err := algo.Run(nw, values)
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		if !res.Converged {
			t.Errorf("%s did not converge (err %v)", algo.Name(), res.FinalErr)
		}
		// Push-sum's outputs are ratio estimates s/w: their mean only
		// approximates the target. The pairwise-averaging algorithms
		// preserve it exactly, ARQ or not.
		tol := 1e-9
		if algo.Name() == "push-sum" {
			tol = 1e-2
		}
		if got := Mean(values); math.Abs(got-want) > tol {
			t.Errorf("%s drifted the mean: %v -> %v", algo.Name(), want, got)
		}
		if res.SimSeconds <= 0 {
			t.Errorf("%s reports no simulated time under a delay model", algo.Name())
		}
	}
}

// TestTransportFacadeDeterministic: a transport run is a pure function
// of the seed, event clock included.
func TestTransportFacadeDeterministic(t *testing.T) {
	run := func() *Result {
		nw, err := NewNetwork(192, WithSeed(31), WithRadiusMultiplier(2.2))
		if err != nil {
			t.Fatal(err)
		}
		values := make([]float64, nw.N())
		for i := range values {
			values[i] = float64(i)
		}
		res, err := Boyd(
			WithTargetError(1e-2),
			WithFaults("bernoulli:0.15"),
			WithDelay("uniform/0.1/0.4"),
			WithARQ(3, 0.5, 2),
		).Run(nw, values)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("transport runs diverged:\n first %+v\n second %+v", a, b)
	}
	if a.SimSeconds <= 0 {
		t.Fatal("transport run reports no simulated time")
	}
}

// TestTraceTotalsMatchResultUnderARQ: retransmitted airtime is billed
// on the exchange's own trace event (transport events carry zero hops),
// so the full-trace hop total reproduces Result.Transmissions under ARQ
// for every engine, and the traced retransmit/timeout counts agree with
// the metrics counters.
func TestTraceTotalsMatchResultUnderARQ(t *testing.T) {
	nw, err := NewNetwork(256, WithSeed(70), WithRadiusMultiplier(2.0))
	if err != nil {
		t.Fatal(err)
	}
	algos := []struct {
		name string
		make func(opts ...RunOption) Algorithm
	}{
		{"boyd", Boyd},
		{"geographic", Geographic},
		{"push-sum", PushSum},
		{"affine-hierarchical", AffineHierarchical},
		{"affine-async", AffineAsync},
	}
	for _, a := range algos {
		t.Run(a.name, func(t *testing.T) {
			values := make([]float64, nw.N())
			for i, p := range nw.Positions() {
				values[i] = p[0] + 3*p[1]
			}
			var buf bytes.Buffer
			res, err := a.make(
				WithTargetError(1e-2),
				WithFaults("ge:0.05/0.2/0.05/0.6"),
				WithDelay("exp/0.3"),
				WithARQ(2, 1, 2),
				WithTraceJSONL(&buf, 0),
			).Run(nw, values)
			if err != nil {
				t.Fatal(err)
			}
			events, err := trace.ReadJSONL(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			s := trace.Summarize(events, 0)
			if s.Transmissions != res.Transmissions {
				t.Errorf("trace hop total %d != result transmissions %d",
					s.Transmissions, res.Transmissions)
			}
			retransmits := res.Metrics[`geogossip_arq_retransmissions_total{engine="`+a.name+`"}`]
			timeouts := res.Metrics[`geogossip_arq_timeouts_total{engine="`+a.name+`"}`]
			if retransmits == 0 || timeouts == 0 {
				t.Fatalf("ARQ over a bursty link retransmitted nothing (%v retries, %v timeouts)", retransmits, timeouts)
			}
			if got := float64(s.Counts[trace.KindRetransmit]); got != retransmits {
				t.Errorf("trace retransmits %v != metric %v", got, retransmits)
			}
			if got := float64(s.Counts[trace.KindTimeout]); got != timeouts {
				t.Errorf("trace timeouts %v != metric %v", got, timeouts)
			}
		})
	}
}
