module geogossip

go 1.24
