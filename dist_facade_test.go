package geogossip

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
)

// SweepServe with in-process SweepJoin workers must reproduce the
// single-process report and sink byte-for-byte: Results, Cells, Fits,
// LossFits and Metrics (RouteCache and NetBuild are per-worker state
// and legitimately differ with the sharding).
func TestSweepServeMatchesSweep(t *testing.T) {
	spec := SweepSpec{
		Algorithms: []string{"boyd", "affine-hierarchical"},
		Ns:         []int{96, 128},
		Seeds:      2,
		LossRates:  []float64{0, 0.1},
		TargetErr:  5e-2,
	}
	var wantJSONL bytes.Buffer
	want, err := Sweep(context.Background(), spec,
		WithSweepWorkers(1), WithSweepJSONL(&wantJSONL))
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	var gotJSONL bytes.Buffer
	const workers = 2
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := SweepJoin(context.Background(), addr,
				WithSweepWorkers(2),
				WithSweepWorkerName(fmt.Sprintf("w%d", i)))
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	got, err := SweepServe(context.Background(), ln, spec, WithSweepJSONL(&gotJSONL))
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if !bytes.Equal(gotJSONL.Bytes(), wantJSONL.Bytes()) {
		t.Errorf("distributed sink differs from single-process sink (%d vs %d bytes)",
			gotJSONL.Len(), wantJSONL.Len())
	}
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Error("distributed Results differ")
	}
	if !reflect.DeepEqual(got.Cells, want.Cells) {
		t.Error("distributed Cells differ")
	}
	if !reflect.DeepEqual(got.Fits, want.Fits) {
		t.Error("distributed Fits differ")
	}
	if !reflect.DeepEqual(got.LossFits, want.LossFits) {
		t.Error("distributed LossFits differ")
	}
	if !reflect.DeepEqual(got.Metrics, want.Metrics) {
		t.Error("distributed Metrics differ")
	}
}

// WriteSweepResults must emit the exact bytes the JSONL sink streams, so
// rewritten (gzip-resumed) and merged files stay byte-compatible.
func TestWriteSweepResultsMatchesSink(t *testing.T) {
	spec := SweepSpec{
		Algorithms: []string{"boyd"},
		Ns:         []int{96},
		Seeds:      2,
		TargetErr:  5e-2,
	}
	var sink bytes.Buffer
	rep, err := Sweep(context.Background(), spec, WithSweepWorkers(1), WithSweepJSONL(&sink))
	if err != nil {
		t.Fatal(err)
	}
	var rewritten bytes.Buffer
	if err := WriteSweepResults(&rewritten, rep.Results); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rewritten.Bytes(), sink.Bytes()) {
		t.Error("WriteSweepResults bytes differ from the live sink's")
	}
	parsed, err := ReadSweepResults(bytes.NewReader(rewritten.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, rep.Results) {
		t.Error("rewritten results do not parse back identically")
	}
}
