package geogossip

import (
	"context"
	"net"
	"time"

	"geogossip/internal/sweep"
	"geogossip/internal/sweep/dist"
)

// WithSweepLeaseSize caps the tasks handed out per lease by SweepServe
// (default: twice the requesting worker's slot count). Smaller leases
// re-balance faster under heterogeneous workers; larger ones amortize
// protocol round trips.
func WithSweepLeaseSize(n int) SweepOption {
	return func(c *sweepConfig) { c.leaseSize = n }
}

// WithSweepLeaseTimeout sets how long SweepServe waits without any
// message from a worker before declaring its leases dead and re-issuing
// their unfinished tasks (default 30s). Per-task seeds make every
// re-execution bit-identical, so a timeout can only cost duplicate work,
// never change results.
func WithSweepLeaseTimeout(d time.Duration) SweepOption {
	return func(c *sweepConfig) { c.leaseTimeout = d }
}

// WithSweepWorkerName labels a SweepJoin worker in the coordinator's
// gauges and /progress output (default "host/pid").
func WithSweepWorkerName(name string) SweepOption {
	return func(c *sweepConfig) { c.workerName = name }
}

// SweepServe coordinates one distributed sweep: it expands the grid
// exactly like Sweep, leases task ranges to SweepJoin workers over ln,
// collects their streamed results, and writes the WithSweepJSONL sink in
// canonical task order — byte-identical to a single-process
// `Sweep(..., WithSweepWorkers(1))` of the same spec, at any worker
// count and even across worker crashes (expired leases re-issue, and the
// deterministic per-task seeds make duplicate executions identical, so
// duplicates are simply discarded). The returned report matches the
// single-process one in Results, Cells, Fits, LossFits and Metrics;
// RouteCache and NetBuild sum per-worker state and therefore depend on
// how the grid was sharded.
//
// Recognized options: WithSweepJSONL, WithSweepResume (a restarted
// coordinator re-validates its sink and leases only incomplete tasks),
// WithSweepProgress, WithSweepMetrics, WithSweepLeaseSize,
// WithSweepLeaseTimeout. Worker-side options are ignored. SweepServe
// returns when the grid is complete, the sink fails, or ctx is
// cancelled (partial report alongside ctx.Err()); the listener is
// closed before it returns.
func SweepServe(ctx context.Context, ln net.Listener, spec SweepSpec, opts ...SweepOption) (*SweepReport, error) {
	var cfg sweepConfig
	for _, o := range opts {
		o(&cfg)
	}
	reg := cfg.metrics
	if reg == nil {
		reg = NewMetricsRegistry()
	}
	copt := dist.CoordOptions{
		LeaseSize:    cfg.leaseSize,
		LeaseTimeout: cfg.leaseTimeout,
		Progress:     cfg.progress,
		Obs:          reg.reg,
	}
	if cfg.jsonl != nil {
		copt.Sink = sweep.NewJSONL(cfg.jsonl)
	}
	for _, r := range cfg.resume {
		copt.Resume = append(copt.Resume, toInternalResult(r))
	}
	sum, err := dist.Serve(ctx, ln, spec.internal(), copt)
	if sum == nil {
		return nil, err
	}
	return buildReport(sum.Results, sum.Metrics, sum.Route, sum.Net), err
}

// SweepJoin connects to a SweepServe coordinator at addr and executes
// leases until the grid completes (returns nil), the connection drops
// (returns the transport error — re-join to continue; the coordinator
// re-issues anything lost), or ctx is cancelled. The worker keeps one
// pooled executor for the whole session, sharing built networks and
// warmed route caches across its leases.
//
// Recognized options: WithSweepWorkers (the worker's slot count),
// WithSweepBuildWorkers, WithSweepWorkerName, WithSweepNetworkDir (the
// worker consults the snapshot store before building and reports builds
// avoided in its heartbeats), and WithSweepProgress — called with this
// worker's running task count and total 0 (a worker cannot see
// grid-wide progress; watch the coordinator's /progress for that).
// Coordinator-side options are ignored.
func SweepJoin(ctx context.Context, addr string, opts ...SweepOption) error {
	var cfg sweepConfig
	for _, o := range opts {
		o(&cfg)
	}
	var progress func(int)
	if cfg.progress != nil {
		progress = func(done int) { cfg.progress(done, 0) }
	}
	return dist.Join(ctx, addr, dist.WorkerOptions{
		Name:         cfg.workerName,
		Slots:        cfg.workers,
		BuildWorkers: cfg.buildWorkers,
		NetDir:       cfg.netDir,
		Progress:     progress,
	})
}
